//! Simulator-backed application execution.
//!
//! [`SimExecutor`] runs a [`WorkloadDescriptor`] on a simulated
//! power-capped machine, either at the paper's default configuration or
//! under an ARCS [`RegionTuner`]. It implements [`Backend`], so the run
//! loop itself — §III-C overhead charging, energy metering, report
//! assembly — lives once in [`crate::backend`] and is shared verbatim with
//! the live path.
//!
//! Region results are memoised per (region, trip count, configuration,
//! cap) in a [`SharedSimCache`] — the simulator is deterministic, so
//! repeated invocations at the same configuration are identical, which
//! makes whole-application sweeps cheap. By default each executor owns a
//! private cache; [`SimExecutor::with_shared_cache`] attaches a cache
//! shared across executors (the sweep engine does this so concurrent
//! cells never re-simulate a configuration another cell already priced).
//!
//! Simulated region durations are also pushed into an optional APEX
//! instance so profile-based analyses (Fig. 9) read the same introspection
//! state the live path populates.

use crate::backend::{self, Backend, RegionFeatures, RegionRun, RunError, Runner};
use crate::cap::{CapHandle, CapWatch};
use crate::config::OmpConfig;
use crate::faults::{FaultClock, MeterFault};
use crate::report::AppRunReport;
use crate::tunable::TunedConfig;
use crate::tuner::{RegionTuner, TunerOptions};
use arcs_apex::Apex;
use arcs_harmony::History;
use arcs_metrics::MetricsRegistry;
use arcs_powersim::{
    simulate_region_with, CacheBindError, CacheReader, FaultPlan, FxBuildHasher, InvocationFaults,
    Machine, MeasureError, PackageEnergy, Rapl, RegionId, RegionModel, SharedSimCache, SimConfig,
    SimReport, SimScratch, WorkloadDescriptor,
};
use arcs_trace::{TraceEvent, TraceSink};
use std::collections::HashMap;
use std::sync::Arc;

/// Per-region executor state: the cache-interned id (resolved once, not
/// per lookup) and the invocation ordinal feeding the noise model.
struct RegionSlot {
    id: RegionId,
    invocations: u64,
}

/// Executes workloads on the simulated machine under a power cap.
pub struct SimExecutor {
    pub machine: Machine,
    cap_w: f64,
    /// The cap as requested, before RAPL clamping (trace `CapChange`).
    requested_cap_w: f64,
    rapl: Rapl,
    cache: Arc<SharedSimCache>,
    /// Lock-free view of `cache`'s frozen shard snapshots; rebuilt
    /// whenever a different cache is bound.
    reader: CacheReader,
    /// Reusable simulation working memory (miss path only).
    scratch: SimScratch,
    apex: Option<Arc<Apex>>,
    noise: Option<NoiseModel>,
    trace: Option<Arc<dyn TraceSink>>,
    metrics: Option<Arc<MetricsRegistry>>,
    energy_meter: PackageEnergy,
    /// Per-region slots: interned cache id + invocation ordinal (the
    /// ordinal feeds the stateless noise model and persists across runs so
    /// repeated training passes see fresh noise).
    regions: HashMap<String, RegionSlot, FxBuildHasher>,
    faults: Option<FaultClock>,
    /// Externally-owned cap, polled at region boundaries (the broker's
    /// reallocation path; `None` keeps the constructor cap for the run).
    cap_watch: Option<CapWatch>,
}

/// Multiplicative measurement noise: real testbeds never return the same
/// region time twice (OS jitter, cache state, DVFS transients). The model
/// is *stateless*: the factor for an invocation is a pure function of
/// (seed, region name, invocation ordinal), so it does not depend on the
/// order in which other regions run — two executors replaying the same
/// region sequence agree factor-for-factor even if interleaved
/// differently. Runs are reproducible, but the *tuner* sees
/// per-invocation perturbations, which is what resolves near-tie argmins
/// differently across power caps and workloads on the paper's machines
/// (see EXPERIMENTS.md deviations D2/D3).
#[derive(Debug, Clone, Copy)]
pub struct NoiseModel {
    /// Coefficient of variation of the multiplicative factor.
    pub cv: f64,
    pub seed: u64,
}

impl NoiseModel {
    pub fn new(cv: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&cv));
        NoiseModel { cv, seed }
    }

    /// Multiplicative factor for one invocation (mean 1, cv ≈ `cv`,
    /// strictly positive). Pure: same (seed, region, invocation) → same
    /// factor, regardless of what ran before.
    pub fn factor(&self, region: &str, invocation: u64) -> f64 {
        let mut h = self.seed ^ 0x9E37_79B9_7F4A_7C15;
        for b in region.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01B3);
        }
        h ^= invocation.wrapping_mul(0xA24B_AED4_963E_E407);
        // splitmix64 finaliser.
        let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let u = (z >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
        let a = (self.cv * 3f64.sqrt()).min(0.95);
        1.0 - a + 2.0 * a * u
    }
}

impl SimExecutor {
    pub fn new(machine: Machine, cap_w: f64) -> Self {
        let mut rapl = Rapl::new(&machine);
        let requested_cap_w = cap_w;
        let cap_w = rapl.set_package_cap(cap_w);
        let cache = Arc::new(SharedSimCache::new(&machine.name));
        let reader = cache.reader();
        SimExecutor {
            machine,
            cap_w,
            requested_cap_w,
            rapl,
            cache,
            reader,
            scratch: SimScratch::default(),
            apex: None,
            noise: None,
            trace: None,
            metrics: None,
            energy_meter: PackageEnergy::new(),
            regions: HashMap::default(),
            faults: None,
            cap_watch: None,
        }
    }

    /// Watch an externally-owned [`CapHandle`]: every `set` on the handle
    /// is applied — clamped, traced as a `CapChange` — immediately before
    /// the next region invocation, exactly like a scheduled cap fault.
    /// The handle's current value replaces the constructor cap at attach
    /// time.
    pub fn with_cap_handle(mut self, handle: CapHandle) -> Self {
        Backend::attach_cap_handle(&mut self, handle);
        self
    }

    /// Route region samples into an APEX instance as well.
    pub fn with_apex(mut self, apex: Arc<Apex>) -> Self {
        if let Some(sink) = &self.trace {
            apex.set_trace(Arc::clone(sink));
        }
        self.apex = Some(apex);
        self
    }

    /// Perturb every region invocation's measured time (and energy) by
    /// deterministic multiplicative noise.
    pub fn with_noise(mut self, cv: f64, seed: u64) -> Self {
        self.noise = Some(NoiseModel::new(cv, seed));
        self
    }

    /// Attach a deterministic [`FaultPlan`]: meter reads and region
    /// invocations are perturbed per the plan's seeded schedule. Every
    /// injected fault is traced as a `FaultInjected` event and counted
    /// under `arcs/faults/<kind>`.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        Backend::attach_faults(&mut self, plan);
        self
    }

    /// Emit the trace/metrics breadcrumbs for one injected fault.
    fn note_fault(&self, kind: &str, region: &str, magnitude: f64) {
        if let Some(sink) = &self.trace {
            if sink.enabled() {
                sink.record(
                    None,
                    TraceEvent::FaultInjected {
                        kind: kind.to_string(),
                        region: region.to_string(),
                        magnitude,
                    },
                );
            }
        }
        if let Some(registry) = &self.metrics {
            registry.counter(&format!("arcs/faults/{kind}")).inc();
        }
    }

    /// Attach a trace sink: the driver's region/power events, the memo
    /// cache's hit/miss events and APEX's policy events all flow into it.
    pub fn with_trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        Backend::attach_trace(&mut self, sink);
        self
    }

    /// Attach a metrics registry: the driver's counters, the memo cache's
    /// hit/miss/insert counters and the tuner's evaluation counters all
    /// resolve their handles against it.
    pub fn with_metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        Backend::attach_metrics(&mut self, registry);
        self
    }

    /// Attach a memo cache shared with other executors, checking that it
    /// belongs to this executor's machine model — reports are
    /// machine-dependent and the machine is not part of the cache key.
    pub fn try_with_shared_cache(
        mut self,
        cache: Arc<SharedSimCache>,
    ) -> Result<Self, CacheBindError> {
        self.bind_cache(cache)?;
        Ok(self)
    }

    /// Attach a memo cache shared with other executors. Machine mismatches
    /// panic in debug builds; release builds keep the private cache. Use
    /// [`SimExecutor::try_with_shared_cache`] to handle the mismatch.
    pub fn with_shared_cache(mut self, cache: Arc<SharedSimCache>) -> Self {
        let bound = self.bind_cache(cache);
        debug_assert!(
            bound.is_ok(),
            "shared cache belongs to a different machine model: {bound:?}"
        );
        self
    }

    fn bind_cache(&mut self, cache: Arc<SharedSimCache>) -> Result<(), CacheBindError> {
        cache.check_machine(&self.machine.name)?;
        if let Some(sink) = &self.trace {
            cache.attach_trace(Arc::clone(sink));
        }
        if let Some(registry) = &self.metrics {
            cache.attach_metrics(registry);
        }
        self.reader = cache.reader();
        // Interned ids belong to the cache that issued them — re-resolve
        // lazily against the new cache.
        self.regions.clear();
        self.cache = cache;
        Ok(())
    }

    /// The memo cache this executor reads and writes.
    pub fn shared_cache(&self) -> &Arc<SharedSimCache> {
        &self.cache
    }

    pub fn power_cap_w(&self) -> f64 {
        self.cap_w
    }

    /// Memoised single-region simulation. Looks up by `&str` — the region
    /// name is only copied into the cache on first miss.
    pub fn simulate(&mut self, region: &RegionModel, cfg: SimConfig) -> Arc<SimReport> {
        self.simulate_at(region, cfg, None)
    }

    /// [`SimExecutor::simulate`] with an optional per-region frequency
    /// limit (the DVFS knob); `None` is exactly the unclamped path.
    pub fn simulate_at(
        &mut self,
        region: &RegionModel,
        cfg: SimConfig,
        freq_limit_ghz: Option<f64>,
    ) -> Arc<SimReport> {
        let id = self.region_id(&region.name);
        let cap_w = self.cap_w;
        let machine = &self.machine;
        let scratch = &mut self.scratch;
        self.cache.get_or_insert_id(
            &mut self.reader,
            id,
            region.iterations,
            cfg,
            cap_w,
            freq_limit_ghz,
            || simulate_region_with(machine, cap_w, region, cfg, freq_limit_ghz, scratch),
        )
    }

    /// The cache-interned id for `region`, resolved once per region per
    /// cache bind (warm calls are one map probe, no allocation).
    fn region_id(&mut self, region: &str) -> RegionId {
        if let Some(slot) = self.regions.get(region) {
            return slot.id;
        }
        let id = self.cache.intern(region);
        self.regions.insert(region.to_string(), RegionSlot { id, invocations: 0 });
        id
    }

    /// Next invocation ordinal for `region` (0-based).
    fn next_invocation(&mut self, region: &str) -> u64 {
        if let Some(slot) = self.regions.get_mut(region) {
            let inv = slot.invocations;
            slot.invocations += 1;
            inv
        } else {
            let id = self.cache.intern(region);
            self.regions.insert(region.to_string(), RegionSlot { id, invocations: 1 });
            0
        }
    }

    /// Apply a newly requested cap: reprogram RAPL, remember both views,
    /// trace the move. One shared path for scheduled cap faults and
    /// external (broker) reallocations.
    fn apply_requested_cap(&mut self, cap: f64) {
        let effective = self.rapl.set_package_cap(cap);
        self.requested_cap_w = cap;
        self.cap_w = effective;
        if let Some(sink) = &self.trace {
            if sink.enabled() {
                sink.record(
                    None,
                    TraceEvent::CapChange { requested_w: cap, effective_w: effective },
                );
            }
        }
    }

    /// Run the whole application at the paper's default configuration
    /// (no instrumentation, no tuning).
    pub fn run_default(&mut self, wl: &WorkloadDescriptor) -> AppRunReport {
        Runner::new(self).workload(wl).run().expect("workload is set")
    }

    /// Run the whole application with a fixed per-region configuration map
    /// (no tuner, no overheads) — used for oracle/ablation comparisons.
    pub fn run_fixed(
        &mut self,
        wl: &WorkloadDescriptor,
        config_for: &dyn Fn(&str) -> OmpConfig,
        strategy: &str,
    ) -> AppRunReport {
        Runner::new(self)
            .workload(wl)
            .fixed(|name: &str| config_for(name), strategy)
            .run()
            .expect("workload is set")
    }

    /// Run the application under an ARCS tuner (Online, Offline-train or
    /// Offline-replay, depending on the tuner's mode).
    pub fn run_tuned(&mut self, wl: &WorkloadDescriptor, tuner: &mut RegionTuner) -> AppRunReport {
        Runner::new(self).workload(wl).tuner(tuner).run().expect("workload is set")
    }

    /// ARCS-Offline training: see [`Runner::train`].
    pub fn train_offline(
        &mut self,
        wl: &WorkloadDescriptor,
        options: TunerOptions,
        context: &str,
    ) -> History<OmpConfig> {
        Runner::new(self)
            .workload(wl)
            .train(options, context)
            .expect("train_offline requires TuningMode::OfflineTrain")
    }
}

impl Backend for SimExecutor {
    fn machine(&self) -> &Machine {
        &self.machine
    }

    fn power_cap_w(&self) -> f64 {
        self.cap_w
    }

    fn requested_power_cap_w(&self) -> f64 {
        self.requested_cap_w
    }

    fn begin_run(&mut self) {
        self.energy_meter = PackageEnergy::new();
        self.energy_meter.sample(&self.rapl); // prime against the current counter
        if let Some(fc) = &mut self.faults {
            fc.begin_run();
        }
    }

    fn charge_overhead(&mut self, dt_s: f64) {
        let p = backend::overhead_power_w(&self.machine);
        self.rapl.advance(dt_s, p);
    }

    fn run_region(&mut self, region: &RegionModel, cfg: TunedConfig) -> RegionRun {
        let inv = self.next_invocation(&region.name);
        // An external cap move (broker reallocation) applies first, at
        // the region boundary; a cap fault scheduled for the same
        // invocation overrides it below.
        if let Some(cap) = self.cap_watch.as_mut().and_then(|w| w.poll()) {
            self.apply_requested_cap(cap);
        }
        let ifaults: Option<InvocationFaults> =
            self.faults.as_mut().map(|fc| fc.invocation_faults(&region.name, inv));
        // Scheduled cap change fires *before* the invocation, so the
        // simulation (and the memo cache key) see the new envelope.
        if let Some(cap) = ifaults.and_then(|f| f.cap_change_w) {
            self.note_fault("cap_change", &region.name, cap);
            self.apply_requested_cap(cap);
        }
        let mut rep = self.simulate_at(region, cfg.omp.as_sim(), cfg.freq_ghz);
        if let Some(f) = ifaults {
            if f.straggler_factor > 1.0 {
                // A real slowdown: machine state (time and energy) grows,
                // not just the observation.
                rep = Arc::new(rep.with_straggler(&self.machine, f.straggler_factor));
                self.note_fault("straggler", &region.name, f.straggler_factor);
            }
        }
        let fnoise = match &self.noise {
            Some(n) => n.factor(&region.name, inv),
            None => 1.0,
        };
        self.rapl.advance(rep.time_s * fnoise, rep.avg_power_w());
        let mut observed = rep.time_s * fnoise;
        if let Some(f) = ifaults {
            if f.spike_factor > 1.0 {
                // Measurement-only: the timer lies, the machine doesn't.
                observed *= f.spike_factor;
                self.note_fault("timer_spike", &region.name, f.spike_factor);
            }
            if f.drop_sample {
                if let Some(fc) = &mut self.faults {
                    fc.arm_stale_read();
                }
                self.note_fault("sample_drop", &region.name, 1.0);
            }
        }
        RegionRun {
            time_s: observed,
            features: RegionFeatures {
                busy_s: rep.busy_total_s(),
                barrier_s: rep.barrier_total_s(),
                l1_miss_rate: rep.cache.l1_miss_rate,
                l2_miss_rate: rep.cache.l2_miss_rate,
                l3_miss_rate: rep.cache.l3_miss_rate,
            },
        }
    }

    fn energy_j(&mut self) -> Result<f64, MeasureError> {
        match self.faults.as_mut().and_then(FaultClock::meter_fault) {
            Some(MeterFault::Fail(ord)) => {
                self.note_fault("rapl_read", "", ord as f64);
                Err(MeasureError::RaplRead { attempts: 1 })
            }
            // A dropped sample: answer with the stale counter value
            // without resampling RAPL.
            Some(MeterFault::Stale) => Ok(self.energy_meter.total_j()),
            None => Ok(self.energy_meter.sample(&self.rapl)),
        }
    }

    fn attach_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(FaultClock::new(plan));
    }

    fn attach_cap_handle(&mut self, handle: CapHandle) {
        // The handle's current value replaces the constructor cap; later
        // `set`s apply at region boundaries via `CapWatch::poll`.
        let requested = handle.get();
        let effective = self.rapl.set_package_cap(requested);
        self.requested_cap_w = requested;
        self.cap_w = effective;
        self.cap_watch = Some(CapWatch::new(handle));
    }

    fn record_sample(&mut self, region: &str, time_s: f64, energy_total_j: f64) {
        if let Some(apex) = &self.apex {
            let task = apex.task(region);
            apex.sample(task, time_s);
            // Energy introspection: the unwrapped RAPL reading, as a
            // periodic APEX sampler would record it.
            apex.record_counter("rapl/package_energy_j", energy_total_j);
        }
    }

    fn trace(&self) -> Option<&Arc<dyn TraceSink>> {
        self.trace.as_ref()
    }

    fn attach_trace(&mut self, sink: Arc<dyn TraceSink>) {
        self.cache.attach_trace(Arc::clone(&sink));
        if let Some(apex) = &self.apex {
            apex.set_trace(Arc::clone(&sink));
        }
        self.trace = Some(sink);
    }

    fn metrics(&self) -> Option<&Arc<MetricsRegistry>> {
        self.metrics.as_ref()
    }

    fn attach_metrics(&mut self, registry: Arc<MetricsRegistry>) {
        self.cache.attach_metrics(&registry);
        self.metrics = Some(registry);
    }

    fn bind_shared_cache(&mut self, cache: Arc<SharedSimCache>) -> Result<(), RunError> {
        self.bind_cache(cache).map_err(RunError::from)
    }
}

/// Convenience: the four paper runs for one workload at one power cap.
pub mod runs {
    use super::*;
    use crate::config::ConfigSpace;
    use crate::tuner::TunerOptions;

    /// Default configuration, no ARCS.
    pub fn default_run(machine: &Machine, cap_w: f64, wl: &WorkloadDescriptor) -> AppRunReport {
        default_run_on(&mut SimExecutor::new(machine.clone(), cap_w), wl)
    }

    /// [`default_run`] on a caller-built executor (shared cache, noise…).
    pub fn default_run_on(exec: &mut SimExecutor, wl: &WorkloadDescriptor) -> AppRunReport {
        exec.run_default(wl)
    }

    /// ARCS-Online: Nelder–Mead search and execution in the same run.
    pub fn online_run(machine: &Machine, cap_w: f64, wl: &WorkloadDescriptor) -> AppRunReport {
        online_run_on(&mut SimExecutor::new(machine.clone(), cap_w), wl)
    }

    /// [`online_run`] on a caller-built executor.
    pub fn online_run_on(exec: &mut SimExecutor, wl: &WorkloadDescriptor) -> AppRunReport {
        let space = ConfigSpace::for_machine(&exec.machine);
        let mut tuner = RegionTuner::new(TunerOptions::online(space));
        let mut rep = exec.run_tuned(wl, &mut tuner);
        rep.strategy = "arcs-online".into();
        rep
    }

    /// ARCS-Offline: exhaustive training execution(s), then the measured
    /// replay execution. Returns (replay report, history).
    pub fn offline_run(
        machine: &Machine,
        cap_w: f64,
        wl: &WorkloadDescriptor,
    ) -> (AppRunReport, History<OmpConfig>) {
        offline_run_on(
            &mut SimExecutor::new(machine.clone(), cap_w),
            &mut SimExecutor::new(machine.clone(), cap_w),
            wl,
        )
    }

    /// [`offline_run`] on caller-built trainer/replayer executors (the
    /// paper trains and measures in separate executions, so two executors;
    /// they may share a memo cache).
    pub fn offline_run_on(
        trainer: &mut SimExecutor,
        replayer: &mut SimExecutor,
        wl: &WorkloadDescriptor,
    ) -> (AppRunReport, History<OmpConfig>) {
        let space = ConfigSpace::for_machine(&trainer.machine);
        let context = format!("{}.{}.{}W", wl.name, trainer.machine.name, trainer.power_cap_w());
        let history =
            trainer.train_offline(wl, TunerOptions::offline_train(space.clone()), &context);
        let mut tuner = RegionTuner::new(TunerOptions::offline_replay(space, history.clone()));
        let mut rep = replayer.run_tuned(wl, &mut tuner);
        rep.strategy = "arcs-offline".into();
        (rep, history)
    }
}

#[cfg(test)]
mod tests {
    use super::runs::*;
    use super::*;
    use arcs_kernels::model;
    use arcs_kernels::Class;

    fn small_bt() -> WorkloadDescriptor {
        let mut wl = model::bt(Class::W);
        wl.timesteps = 30;
        wl
    }

    #[test]
    fn default_run_is_reproducible() {
        let m = Machine::crill();
        let wl = small_bt();
        let a = default_run(&m, 85.0, &wl);
        let b = default_run(&m, 85.0, &wl);
        assert_eq!(a.time_s, b.time_s);
        assert!((a.energy_j - b.energy_j).abs() < 1e-9);
        assert_eq!(a.per_region.len(), 5);
        assert_eq!(a.per_region["bt/x_solve"].invocations, 30);
    }

    #[test]
    fn default_run_has_no_overheads() {
        let m = Machine::crill();
        let rep = default_run(&m, 115.0, &small_bt());
        assert_eq!(rep.config_change_overhead_s, 0.0);
        assert_eq!(rep.instrumentation_overhead_s, 0.0);
        assert!(rep.tuner.is_none());
    }

    #[test]
    fn energy_counter_path_matches_simulated_energy_roughly() {
        // The RAPL path quantises at 1 ms but must track total energy.
        let m = Machine::crill();
        let wl = small_bt();
        let rep = default_run(&m, 115.0, &wl);
        assert!(rep.energy_j > 0.0);
        // Cross-check against direct integration of the region reports.
        let mut exec = SimExecutor::new(m.clone(), 115.0);
        let cfg = OmpConfig::default_for(&m).as_sim();
        let direct: f64 =
            wl.step.iter().map(|r| exec.simulate(r, cfg).energy_j * wl.timesteps as f64).sum();
        let err = (rep.energy_j - direct).abs() / direct;
        assert!(err < 0.02, "counter {} vs direct {direct}", rep.energy_j);
    }

    #[test]
    fn offline_beats_default_on_sp() {
        let m = Machine::crill();
        let mut wl = model::sp(Class::B);
        wl.timesteps = 20; // replay length doesn't change per-invocation ratios
        let base = default_run(&m, 115.0, &wl);
        let (off, history) = offline_run(&m, 115.0, &wl);
        assert!(
            off.time_s < base.time_s,
            "offline {} should beat default {}",
            off.time_s,
            base.time_s
        );
        assert_eq!(history.len(), 5);
        // Energy improves too (the paper's headline).
        assert!(off.energy_j < base.energy_j);
    }

    #[test]
    fn online_pays_search_overhead_but_still_helps_sp() {
        let m = Machine::crill();
        let mut wl = model::sp(Class::B);
        wl.timesteps = 200;
        let base = default_run(&m, 85.0, &wl);
        let on = online_run(&m, 85.0, &wl);
        assert!(on.time_s < base.time_s, "online {} vs default {}", on.time_s, base.time_s);
        assert!(on.tuner.unwrap().config_changes > 0);
    }

    #[test]
    fn tuned_runs_account_overheads() {
        let m = Machine::crill();
        let mut wl = model::bt(Class::W);
        wl.timesteps = 10;
        let on = online_run(&m, 115.0, &wl);
        // Instrumentation is per-tuned-invocation; configuration changes
        // fire whenever the global ICVs move.
        assert!(on.config_change_overhead_s > 0.0);
        assert!(on.config_change_overhead_s <= 50.0 * m.config_change_s);
        assert!((on.instrumentation_overhead_s - 50.0 * m.instrumentation_s).abs() < 1e-9);
    }

    #[test]
    fn training_converges_and_exports_all_regions() {
        let m = Machine::crill();
        let mut wl = model::bt(Class::W);
        wl.timesteps = 60;
        let mut exec = SimExecutor::new(m.clone(), 115.0);
        let space = crate::config::ConfigSpace::crill();
        let h = exec.train_offline(&wl, TunerOptions::offline_train(space), "bt.W.test");
        assert_eq!(h.len(), 5);
        for (_, entry) in h.entries.iter() {
            assert_eq!(entry.evaluations, 252);
        }
    }

    #[test]
    fn shared_cache_is_reused_across_executors() {
        let m = Machine::crill();
        let cache = Arc::new(SharedSimCache::new(&m.name));
        let wl = small_bt();
        let a = default_run_on(
            &mut SimExecutor::new(m.clone(), 85.0).with_shared_cache(Arc::clone(&cache)),
            &wl,
        );
        let warm = cache.stats();
        assert_eq!(warm.hits, 5 * 29); // 5 regions × (30 − first) invocations
        let b = default_run_on(
            &mut SimExecutor::new(m.clone(), 85.0).with_shared_cache(Arc::clone(&cache)),
            &wl,
        );
        assert_eq!(a, b);
        // The second executor never missed: all its lookups hit.
        let after = cache.stats();
        assert_eq!(after.misses, warm.misses);
        assert_eq!(after.hits, warm.hits + 5 * 30);
    }

    #[test]
    fn shared_cache_rejects_wrong_machine() {
        let cache = Arc::new(SharedSimCache::new("minotaur"));
        let err = SimExecutor::new(Machine::crill(), 85.0)
            .try_with_shared_cache(cache)
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err.cache_machine, "minotaur");
        assert_eq!(err.machine, "crill");
        assert!(err.to_string().contains("different machine model"));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "different machine model")]
    fn shared_cache_mismatch_panics_in_debug_builds() {
        let cache = Arc::new(SharedSimCache::new("minotaur"));
        let _ = SimExecutor::new(Machine::crill(), 85.0).with_shared_cache(cache);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use arcs_kernels::{model, Class};
    use arcs_trace::{NullSink, TraceEvent, VecSink};

    fn tiny_sp() -> WorkloadDescriptor {
        let mut wl = model::sp(Class::B);
        wl.timesteps = 4;
        wl
    }

    #[test]
    fn traced_online_run_emits_the_full_event_taxonomy() {
        let m = Machine::crill();
        let wl = tiny_sp();
        let sink = Arc::new(VecSink::new());
        let mut exec = SimExecutor::new(m, 80.0).with_trace(sink.clone());
        let _ = runs::online_run_on(&mut exec, &wl);

        let records = sink.drain();
        let count = |kind: &str| records.iter().filter(|r| r.event.kind() == kind).count();
        assert_eq!(count("CapChange"), 1);
        assert_eq!(count("RegionBegin"), 20); // 5 regions × 4 timesteps
        assert_eq!(count("RegionEnd"), 20);
        assert_eq!(count("PowerSample"), 20);
        assert!(count("SearchIteration") > 0, "tuner must report search steps");
        assert!(count("ConfigSwitch") > 0);
        assert!(count("OverheadCharged") > 0);
        assert!(count("CacheMiss") > 0);
        // The cap is below Crill's RAPL floor? No — 80 W is in range, so
        // requested == effective.
        let cap = records.iter().find(|r| r.event.kind() == "CapChange").unwrap();
        assert!(matches!(
            cap.event,
            TraceEvent::CapChange { requested_w, effective_w }
                if requested_w == 80.0 && effective_w == 80.0
        ));
        // Sequence numbers are unique and drain() sorts them.
        for w in records.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
    }

    #[test]
    fn cap_handle_moves_apply_at_region_boundaries_and_trace_cap_changes() {
        let m = Machine::crill();
        let wl = tiny_sp();
        let handle = crate::cap::CapHandle::new(100.0);
        let sink = Arc::new(VecSink::new());
        let mut exec = SimExecutor::new(m.clone(), 85.0)
            .with_cap_handle(handle.clone())
            .with_trace(sink.clone());
        assert_eq!(exec.power_cap_w(), 100.0, "the handle replaces the constructor cap");

        // Reallocate mid-run: the driver's next region boundary applies it.
        handle.set(60.0);
        let rep = exec.run_default(&wl);
        assert_eq!(rep.power_cap_w, 60.0);
        let records = sink.drain();
        let caps: Vec<(f64, f64)> = records
            .iter()
            .filter_map(|r| match r.event {
                TraceEvent::CapChange { requested_w, effective_w } => {
                    Some((requested_w, effective_w))
                }
                _ => None,
            })
            .collect();
        // Run-start CapChange at the attach-time value, then the mid-run
        // move traced through the same path a scheduled cap fault uses.
        assert_eq!(caps, vec![(100.0, 100.0), (60.0, 60.0)]);
        // No FaultInjected breadcrumb: a reallocation is not a fault.
        assert_eq!(records.iter().filter(|r| r.event.kind() == "FaultInjected").count(), 0);

        // An identical run at a fixed 60 W cap prices the post-move
        // regions identically (the memo cache key follows the envelope).
        let fixed = SimExecutor::new(m, 60.0).run_default(&wl);
        assert_eq!(
            rep.per_region["sp/x_solve"].total_time_s,
            fixed.per_region["sp/x_solve"].total_time_s
        );
    }

    #[test]
    fn null_sink_runs_bit_identical_to_untraced_runs() {
        let m = Machine::crill();
        let wl = tiny_sp();
        let plain = SimExecutor::new(m.clone(), 85.0).with_noise(0.1, 9).run_default(&wl);
        let nulled = SimExecutor::new(m.clone(), 85.0)
            .with_noise(0.1, 9)
            .with_trace(Arc::new(NullSink))
            .run_default(&wl);
        assert_eq!(plain, nulled);
    }

    #[test]
    fn runner_surfaces_cache_bind_errors() {
        let m = Machine::crill();
        let wl = tiny_sp();
        let mut exec = SimExecutor::new(m, 85.0);
        let err = Runner::new(&mut exec)
            .workload(&wl)
            .shared_cache(Arc::new(SharedSimCache::new("minotaur")))
            .run()
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, RunError::CacheBind(_)), "got {err:?}");
    }

    #[test]
    fn runner_requires_a_workload() {
        let mut exec = SimExecutor::new(Machine::crill(), 85.0);
        let err = Runner::new(&mut exec).run().map(|_| ()).unwrap_err();
        assert!(matches!(err, RunError::MissingWorkload));
    }

    #[test]
    fn inherent_helpers_match_the_runner() {
        let m = Machine::crill();
        let wl = tiny_sp();
        let old = SimExecutor::new(m.clone(), 85.0).run_default(&wl);
        let new = Runner::new(&mut SimExecutor::new(m, 85.0)).workload(&wl).run().unwrap();
        assert_eq!(old, new);
    }
}

#[cfg(test)]
mod noise_tests {
    use super::*;
    use arcs_kernels::{model, Class};

    #[test]
    fn noise_is_reproducible_and_mean_preserving() {
        let m = Machine::crill();
        let mut wl = model::bt(Class::W);
        wl.timesteps = 40;
        let clean = SimExecutor::new(m.clone(), 115.0).run_default(&wl);
        let a = SimExecutor::new(m.clone(), 115.0).with_noise(0.2, 7).run_default(&wl);
        let b = SimExecutor::new(m.clone(), 115.0).with_noise(0.2, 7).run_default(&wl);
        assert_eq!(a.time_s, b.time_s, "same seed ⇒ same run");
        let c = SimExecutor::new(m.clone(), 115.0).with_noise(0.2, 8).run_default(&wl);
        assert_ne!(a.time_s, c.time_s, "different seed ⇒ different run");
        // Mean-1 noise over 200 invocations: totals within a few percent.
        let rel = (a.time_s - clean.time_s).abs() / clean.time_s;
        assert!(rel < 0.05, "noise must be mean-preserving: {rel}");
    }

    #[test]
    fn noise_factors_do_not_depend_on_interleaving() {
        // The stateless model: a region's k-th invocation draws the same
        // factor whether or not other regions ran in between.
        let n = NoiseModel::new(0.2, 41);
        let alone: Vec<f64> = (0..10).map(|i| n.factor("sp/x_solve", i)).collect();
        let interleaved: Vec<f64> = (0..10)
            .map(|i| {
                let _ = n.factor("sp/y_solve", i); // unrelated draws
                let _ = n.factor("sp/z_solve", i);
                n.factor("sp/x_solve", i)
            })
            .collect();
        assert_eq!(alone, interleaved);
        // Distinct regions and ordinals decorrelate.
        assert_ne!(n.factor("sp/x_solve", 0), n.factor("sp/y_solve", 0));
        assert_ne!(n.factor("sp/x_solve", 0), n.factor("sp/x_solve", 1));
    }

    #[test]
    fn noise_factor_mean_is_one() {
        let n = NoiseModel::new(0.15, 3);
        let mean: f64 = (0..10_000).map(|i| n.factor("r", i)).sum::<f64>() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn noisy_training_still_finds_good_configs() {
        // Offline training under 15% measurement noise must still deliver
        // most of SP's improvement when its history is replayed on the
        // clean simulator (the train→test gap stays small).
        let m = Machine::crill();
        let mut wl = model::sp(Class::B);
        wl.timesteps = 60;
        let clean_base = SimExecutor::new(m.clone(), 115.0).run_default(&wl);
        let space = crate::config::ConfigSpace::for_machine(&m);
        let mut trainer = SimExecutor::new(m.clone(), 115.0).with_noise(0.15, 42);
        let history =
            trainer.train_offline(&wl, TunerOptions::offline_train(space.clone()), "noisy");
        let mut tuner = RegionTuner::new(TunerOptions::offline_replay(space, history));
        let replay = SimExecutor::new(m.clone(), 115.0).run_tuned(&wl, &mut tuner);
        let ratio = replay.time_s / clean_base.time_s;
        assert!(ratio < 0.85, "noisy-trained configs must still win: {ratio}");
    }
}

#[cfg(test)]
mod apex_integration_tests {
    use super::*;
    use arcs_kernels::{model, Class};

    #[test]
    fn sim_runs_populate_apex_profiles_and_energy_counters() {
        let m = Machine::crill();
        let mut wl = model::bt(Class::W);
        wl.timesteps = 10;
        let apex = Arc::new(Apex::new());
        let mut exec = SimExecutor::new(m, 115.0).with_apex(Arc::clone(&apex));
        let rep = exec.run_default(&wl);
        // Timers: one profile per region, one sample per invocation.
        let task = apex.task("bt/x_solve");
        assert_eq!(apex.profile(task).unwrap().count, 10);
        // Energy counter: monotone, final reading equals the report total.
        let e = apex.counter("rapl/package_energy_j").unwrap();
        assert_eq!(e.count, 50);
        assert!(e.max >= e.min);
        assert!((e.last - rep.energy_j).abs() / rep.energy_j < 0.02);
    }
}
