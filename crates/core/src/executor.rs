//! Simulator-backed application execution.
//!
//! [`SimExecutor`] runs a [`WorkloadDescriptor`] on a simulated
//! power-capped machine, either at the paper's default configuration or
//! under an ARCS [`RegionTuner`]. Region results are memoised per
//! (region, configuration) — the simulator is deterministic, so repeated
//! invocations at the same configuration are identical, which makes
//! whole-application sweeps cheap.
//!
//! Overheads follow §III-C: every tuned invocation pays the
//! instrumentation cost (OMPT + APEX); every *configuration change* pays
//! the `omp_set_num_threads`/`omp_set_schedule` cost (≈8 ms on Crill) —
//! present in both Online and Offline strategies because ARCS applies the
//! configuration at region entry. Overhead time is charged at near-idle
//! package power (the paper: "these overheads are not energy hungry
//! computation").
//!
//! Simulated region durations are also pushed into an optional APEX
//! instance so profile-based analyses (Fig. 9) read the same introspection
//! state the live path populates.

use crate::config::OmpConfig;
use crate::report::{AppRunReport, RegionSummary};
use crate::tuner::{RegionTuner, TunerOptions, TuningMode};
use arcs_apex::Apex;
use arcs_harmony::History;
use arcs_powersim::{
    simulate_region, Machine, PackageEnergy, Rapl, RegionModel, SimConfig, SimReport,
    WorkloadDescriptor,
};
use std::collections::HashMap;
use std::sync::Arc;

/// Executes workloads on the simulated machine under a power cap.
pub struct SimExecutor {
    pub machine: Machine,
    cap_w: f64,
    rapl: Rapl,
    // Keyed by (name, trip count, config): the same region id can run at
    // several sizes (MG invokes each operator at every grid level).
    cache: HashMap<(String, usize, SimConfig), Arc<SimReport>>,
    apex: Option<Arc<Apex>>,
    noise: Option<NoiseModel>,
}

/// Multiplicative measurement noise: real testbeds never return the same
/// region time twice (OS jitter, cache state, DVFS transients). The model
/// is deterministic given its seed — runs are reproducible — but the
/// *tuner* sees per-invocation perturbations, which is what resolves
/// near-tie argmins differently across power caps and workloads on the
/// paper's machines (see EXPERIMENTS.md deviations D2/D3).
#[derive(Debug, Clone, Copy)]
pub struct NoiseModel {
    /// Coefficient of variation of the multiplicative factor.
    pub cv: f64,
    pub seed: u64,
    state: u64,
}

impl NoiseModel {
    pub fn new(cv: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&cv));
        NoiseModel { cv, seed, state: seed | 1 }
    }

    /// Next multiplicative factor (mean 1, cv ≈ `cv`, strictly positive).
    fn next_factor(&mut self) -> f64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = (self.state >> 33) as f64 / (1u64 << 31) as f64; // [0,1)
        let a = (self.cv * 3f64.sqrt()).min(0.95);
        1.0 - a + 2.0 * a * u
    }
}

impl SimExecutor {
    pub fn new(machine: Machine, cap_w: f64) -> Self {
        let mut rapl = Rapl::new(&machine);
        let cap_w = rapl.set_package_cap(cap_w);
        SimExecutor { machine, cap_w, rapl, cache: HashMap::new(), apex: None, noise: None }
    }

    /// Route region samples into an APEX instance as well.
    pub fn with_apex(mut self, apex: Arc<Apex>) -> Self {
        self.apex = Some(apex);
        self
    }

    /// Perturb every region invocation's measured time (and energy) by
    /// deterministic multiplicative noise.
    pub fn with_noise(mut self, cv: f64, seed: u64) -> Self {
        self.noise = Some(NoiseModel::new(cv, seed));
        self
    }

    fn noise_factor(&mut self) -> f64 {
        match &mut self.noise {
            Some(n) => n.next_factor(),
            None => 1.0,
        }
    }

    pub fn power_cap_w(&self) -> f64 {
        self.cap_w
    }

    /// Memoised single-region simulation.
    pub fn simulate(&mut self, region: &RegionModel, cfg: SimConfig) -> Arc<SimReport> {
        let key = (region.name.clone(), region.iterations, cfg);
        if let Some(hit) = self.cache.get(&key) {
            return Arc::clone(hit);
        }
        let rep = Arc::new(simulate_region(&self.machine, self.cap_w, region, cfg));
        self.cache.insert(key, Arc::clone(&rep));
        rep
    }

    /// Package power during tuning overheads: uncore + idle cores + a
    /// lightly-busy master core.
    fn overhead_power_w(&self) -> f64 {
        let m = &self.machine;
        let p_core_base = m.power.c0 + m.power.c1 * m.f_base_ghz.powi(3);
        m.sockets as f64 * m.power.p_uncore_w
            + m.total_cores() as f64 * m.power.p_core_idle_w
            + 0.3 * p_core_base
    }

    /// Run the whole application at the paper's default configuration
    /// (no instrumentation, no tuning).
    pub fn run_default(&mut self, wl: &WorkloadDescriptor) -> AppRunReport {
        let cfg = OmpConfig::default_for(&self.machine);
        self.run_fixed(wl, &|_| cfg, "default")
    }

    /// Run the whole application with a fixed per-region configuration map
    /// (no tuner, no overheads) — used for oracle/ablation comparisons.
    pub fn run_fixed(
        &mut self,
        wl: &WorkloadDescriptor,
        config_for: &dyn Fn(&str) -> OmpConfig,
        strategy: &str,
    ) -> AppRunReport {
        let mut acc = RunAccumulator::new(self, wl, strategy);
        for _ts in 0..wl.timesteps {
            for idx in 0..wl.step.len() {
                let region = &wl.step[idx];
                let cfg = config_for(&region.name);
                let rep = self.simulate(region, cfg.as_sim());
                let f = self.noise_factor();
                acc.region(self, &region.name.clone(), cfg, &rep, 0.0, 0.0, f);
            }
        }
        acc.finish(self, None)
    }

    /// Run the application under an ARCS tuner (Online, Offline-train or
    /// Offline-replay, depending on the tuner's mode).
    pub fn run_tuned(&mut self, wl: &WorkloadDescriptor, tuner: &mut RegionTuner) -> AppRunReport {
        // Callers (runs::*) relabel with the specific strategy name.
        let mut acc = RunAccumulator::new(self, wl, "arcs");
        for _ts in 0..wl.timesteps {
            for idx in 0..wl.step.len() {
                let region = &wl.step[idx];
                let decision = tuner.begin(&region.name);
                // The change cost fires whenever the global ICVs must move —
                // with per-region configurations that is typically on every
                // entry of every region whose config differs from its
                // predecessor's, reproducing the paper's per-invocation
                // overhead on the tiny LULESH regions (§III-C).
                let change_s =
                    if decision.changed { self.machine.config_change_s } else { 0.0 };
                // Selective tuning detaches the region from measurement as
                // well ("avoid overheads on the smaller regions").
                let instr_s =
                    if decision.tuned { self.machine.instrumentation_s } else { 0.0 };
                let rep = self.simulate(region, decision.config.as_sim());
                let f = self.noise_factor();
                // The tuner optimises the region time the APEX timer saw —
                // including the measurement noise, as on a real machine.
                tuner.end(&region.name, rep.time_s * f);
                acc.region(
                    self,
                    &region.name.clone(),
                    decision.config,
                    &rep,
                    change_s,
                    instr_s,
                    f,
                );
            }
        }
        acc.finish(self, Some(tuner))
    }

    /// ARCS-Offline training: repeat the application until every region's
    /// exhaustive sweep has converged, then export the history file. The
    /// training executions are not measured (the paper measures only the
    /// second execution, which replays the saved optimum).
    pub fn train_offline(
        &mut self,
        wl: &WorkloadDescriptor,
        options: TunerOptions,
        context: &str,
    ) -> History<OmpConfig> {
        assert!(
            matches!(options.mode, TuningMode::OfflineTrain),
            "train_offline requires TuningMode::OfflineTrain"
        );
        let mut tuner = RegionTuner::new(options);
        // Bound the number of training executions defensively; each pass
        // offers `timesteps` measurements per region against a 252-point
        // space, so a handful of passes always suffices.
        for _pass in 0..64 {
            let _ = self.run_tuned(wl, &mut tuner);
            if tuner.converged() {
                break;
            }
        }
        assert!(tuner.converged(), "offline training failed to converge");
        tuner.export_history(context)
    }
}

/// Shared accumulation for all run flavours.
struct RunAccumulator {
    app: String,
    strategy: String,
    time_s: f64,
    config_overhead_s: f64,
    instr_overhead_s: f64,
    per_region: std::collections::BTreeMap<String, RegionSummary>,
    energy_meter: PackageEnergy,
}

impl RunAccumulator {
    fn new(exec: &mut SimExecutor, wl: &WorkloadDescriptor, strategy: &str) -> Self {
        let mut meter = PackageEnergy::new();
        meter.sample(&exec.rapl); // prime against the current counter
        RunAccumulator {
            app: wl.name.clone(),
            strategy: strategy.to_string(),
            time_s: 0.0,
            config_overhead_s: 0.0,
            instr_overhead_s: 0.0,
            per_region: Default::default(),
            energy_meter: meter,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn region(
        &mut self,
        exec: &mut SimExecutor,
        name: &str,
        cfg: OmpConfig,
        rep: &SimReport,
        change_s: f64,
        instr_s: f64,
        noise: f64,
    ) {
        let overhead_s = change_s + instr_s;
        if overhead_s > 0.0 {
            exec.rapl.advance(overhead_s, exec.overhead_power_w());
        }
        exec.rapl.advance(rep.time_s * noise, rep.avg_power_w());
        self.energy_meter.sample(&exec.rapl);

        self.time_s += rep.time_s * noise + overhead_s;
        self.config_overhead_s += change_s;
        self.instr_overhead_s += instr_s;

        let entry = self.per_region.entry(name.to_string()).or_default();
        entry.invocations += 1;
        entry.total_time_s += rep.time_s * noise;
        entry.busy_s += rep.busy_total_s();
        entry.barrier_s += rep.barrier_total_s();
        let k = entry.invocations as f64;
        entry.l1_miss_rate += (rep.cache.l1_miss_rate - entry.l1_miss_rate) / k;
        entry.l2_miss_rate += (rep.cache.l2_miss_rate - entry.l2_miss_rate) / k;
        entry.l3_miss_rate += (rep.cache.l3_miss_rate - entry.l3_miss_rate) / k;
        entry.final_config = Some(cfg);

        if let Some(apex) = &exec.apex {
            let task = apex.task(name);
            apex.sample(task, rep.time_s * noise);
            // Energy introspection: the unwrapped RAPL reading, as a
            // periodic APEX sampler would record it.
            apex.record_counter("rapl/package_energy_j", self.energy_meter.total_j());
        }
    }

    fn finish(self, exec: &SimExecutor, tuner: Option<&RegionTuner>) -> AppRunReport {
        AppRunReport {
            app: self.app,
            machine: exec.machine.name.clone(),
            power_cap_w: exec.cap_w,
            strategy: self.strategy,
            time_s: self.time_s,
            energy_j: self.energy_meter.total_j(),
            config_change_overhead_s: self.config_overhead_s,
            instrumentation_overhead_s: self.instr_overhead_s,
            per_region: self.per_region,
            tuner: tuner.map(|t| t.stats()),
        }
    }
}

/// Convenience: the four paper runs for one workload at one power cap.
pub mod runs {
    use super::*;
    use crate::config::ConfigSpace;
    use crate::tuner::TunerOptions;

    /// Default configuration, no ARCS.
    pub fn default_run(machine: &Machine, cap_w: f64, wl: &WorkloadDescriptor) -> AppRunReport {
        SimExecutor::new(machine.clone(), cap_w).run_default(wl)
    }

    /// ARCS-Online: Nelder–Mead search and execution in the same run.
    pub fn online_run(machine: &Machine, cap_w: f64, wl: &WorkloadDescriptor) -> AppRunReport {
        let space = ConfigSpace::for_machine(machine);
        let mut tuner = RegionTuner::new(TunerOptions::online(space));
        let mut rep = SimExecutor::new(machine.clone(), cap_w).run_tuned(wl, &mut tuner);
        rep.strategy = "arcs-online".into();
        rep
    }

    /// ARCS-Offline: exhaustive training execution(s), then the measured
    /// replay execution. Returns (replay report, history).
    pub fn offline_run(
        machine: &Machine,
        cap_w: f64,
        wl: &WorkloadDescriptor,
    ) -> (AppRunReport, History<OmpConfig>) {
        let space = ConfigSpace::for_machine(machine);
        let context = format!("{}.{}.{}W", wl.name, machine.name, cap_w);
        let mut trainer = SimExecutor::new(machine.clone(), cap_w);
        let history =
            trainer.train_offline(wl, TunerOptions::offline_train(space.clone()), &context);
        let mut tuner =
            RegionTuner::new(TunerOptions::offline_replay(space, history.clone()));
        let mut rep = SimExecutor::new(machine.clone(), cap_w).run_tuned(wl, &mut tuner);
        rep.strategy = "arcs-offline".into();
        (rep, history)
    }
}

#[cfg(test)]
mod tests {
    use super::runs::*;
    use super::*;
    use arcs_kernels::model;
    use arcs_kernels::Class;

    fn small_bt() -> WorkloadDescriptor {
        let mut wl = model::bt(Class::W);
        wl.timesteps = 30;
        wl
    }

    #[test]
    fn default_run_is_reproducible() {
        let m = Machine::crill();
        let wl = small_bt();
        let a = default_run(&m, 85.0, &wl);
        let b = default_run(&m, 85.0, &wl);
        assert_eq!(a.time_s, b.time_s);
        assert!((a.energy_j - b.energy_j).abs() < 1e-9);
        assert_eq!(a.per_region.len(), 5);
        assert_eq!(a.per_region["bt/x_solve"].invocations, 30);
    }

    #[test]
    fn default_run_has_no_overheads() {
        let m = Machine::crill();
        let rep = default_run(&m, 115.0, &small_bt());
        assert_eq!(rep.config_change_overhead_s, 0.0);
        assert_eq!(rep.instrumentation_overhead_s, 0.0);
        assert!(rep.tuner.is_none());
    }

    #[test]
    fn energy_counter_path_matches_simulated_energy_roughly() {
        // The RAPL path quantises at 1 ms but must track total energy.
        let m = Machine::crill();
        let wl = small_bt();
        let rep = default_run(&m, 115.0, &wl);
        assert!(rep.energy_j > 0.0);
        // Cross-check against direct integration of the region reports.
        let mut exec = SimExecutor::new(m.clone(), 115.0);
        let cfg = OmpConfig::default_for(&m).as_sim();
        let direct: f64 = wl
            .step
            .iter()
            .map(|r| exec.simulate(r, cfg).energy_j * wl.timesteps as f64)
            .sum();
        let err = (rep.energy_j - direct).abs() / direct;
        assert!(err < 0.02, "counter {} vs direct {direct}", rep.energy_j);
    }

    #[test]
    fn offline_beats_default_on_sp() {
        let m = Machine::crill();
        let mut wl = model::sp(Class::B);
        wl.timesteps = 20; // replay length doesn't change per-invocation ratios
        let base = default_run(&m, 115.0, &wl);
        let (off, history) = offline_run(&m, 115.0, &wl);
        assert!(
            off.time_s < base.time_s,
            "offline {} should beat default {}",
            off.time_s,
            base.time_s
        );
        assert_eq!(history.len(), 5);
        // Energy improves too (the paper's headline).
        assert!(off.energy_j < base.energy_j);
    }

    #[test]
    fn online_pays_search_overhead_but_still_helps_sp() {
        let m = Machine::crill();
        let mut wl = model::sp(Class::B);
        wl.timesteps = 200;
        let base = default_run(&m, 85.0, &wl);
        let on = online_run(&m, 85.0, &wl);
        assert!(
            on.time_s < base.time_s,
            "online {} vs default {}",
            on.time_s,
            base.time_s
        );
        assert!(on.tuner.unwrap().config_changes > 0);
    }

    #[test]
    fn tuned_runs_account_overheads() {
        let m = Machine::crill();
        let mut wl = model::bt(Class::W);
        wl.timesteps = 10;
        let on = online_run(&m, 115.0, &wl);
        // Instrumentation is per-tuned-invocation; configuration changes
        // fire whenever the global ICVs move.
        assert!(on.config_change_overhead_s > 0.0);
        assert!(on.config_change_overhead_s <= 50.0 * m.config_change_s);
        assert!((on.instrumentation_overhead_s - 50.0 * m.instrumentation_s).abs() < 1e-9);
    }

    #[test]
    fn training_converges_and_exports_all_regions() {
        let m = Machine::crill();
        let mut wl = model::bt(Class::W);
        wl.timesteps = 60;
        let mut exec = SimExecutor::new(m.clone(), 115.0);
        let space = crate::config::ConfigSpace::crill();
        let h = exec.train_offline(&wl, TunerOptions::offline_train(space), "bt.W.test");
        assert_eq!(h.len(), 5);
        for (_, entry) in h.entries.iter() {
            assert_eq!(entry.evaluations, 252);
        }
    }
}

#[cfg(test)]
mod noise_tests {
    use super::*;
    use arcs_kernels::{model, Class};

    #[test]
    fn noise_is_reproducible_and_mean_preserving() {
        let m = Machine::crill();
        let mut wl = model::bt(Class::W);
        wl.timesteps = 40;
        let clean = SimExecutor::new(m.clone(), 115.0).run_default(&wl);
        let a = SimExecutor::new(m.clone(), 115.0).with_noise(0.2, 7).run_default(&wl);
        let b = SimExecutor::new(m.clone(), 115.0).with_noise(0.2, 7).run_default(&wl);
        assert_eq!(a.time_s, b.time_s, "same seed ⇒ same run");
        let c = SimExecutor::new(m.clone(), 115.0).with_noise(0.2, 8).run_default(&wl);
        assert_ne!(a.time_s, c.time_s, "different seed ⇒ different run");
        // Mean-1 noise over 200 invocations: totals within a few percent.
        let rel = (a.time_s - clean.time_s).abs() / clean.time_s;
        assert!(rel < 0.05, "noise must be mean-preserving: {rel}");
    }

    #[test]
    fn noisy_training_still_finds_good_configs() {
        // Offline training under 15% measurement noise must still deliver
        // most of SP's improvement when its history is replayed on the
        // clean simulator (the train→test gap stays small).
        let m = Machine::crill();
        let mut wl = model::sp(Class::B);
        wl.timesteps = 60;
        let clean_base = SimExecutor::new(m.clone(), 115.0).run_default(&wl);
        let space = crate::config::ConfigSpace::for_machine(&m);
        let mut trainer = SimExecutor::new(m.clone(), 115.0).with_noise(0.15, 42);
        let history = trainer.train_offline(
            &wl,
            TunerOptions::offline_train(space.clone()),
            "noisy",
        );
        let mut tuner = RegionTuner::new(TunerOptions::offline_replay(space, history));
        let replay = SimExecutor::new(m.clone(), 115.0).run_tuned(&wl, &mut tuner);
        let ratio = replay.time_s / clean_base.time_s;
        assert!(ratio < 0.85, "noisy-trained configs must still win: {ratio}");
    }
}

#[cfg(test)]
mod apex_integration_tests {
    use super::*;
    use arcs_kernels::{model, Class};

    #[test]
    fn sim_runs_populate_apex_profiles_and_energy_counters() {
        let m = Machine::crill();
        let mut wl = model::bt(Class::W);
        wl.timesteps = 10;
        let apex = Arc::new(Apex::new());
        let mut exec = SimExecutor::new(m, 115.0).with_apex(Arc::clone(&apex));
        let rep = exec.run_default(&wl);
        // Timers: one profile per region, one sample per invocation.
        let task = apex.task("bt/x_solve");
        assert_eq!(apex.profile(task).unwrap().count, 10);
        // Energy counter: monotone, final reading equals the report total.
        let e = apex.counter("rapl/package_energy_j").unwrap();
        assert_eq!(e.count, 50);
        assert!(e.max >= e.min);
        assert!((e.last - rep.energy_j).abs() / rep.energy_j < 0.02);
    }
}
