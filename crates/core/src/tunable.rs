//! The tunable-knob encoding layer: one typed mapping between Harmony's
//! index-grid [`Point`]s and concrete configurations.
//!
//! Historically the `OmpConfig` ↔ `Point` mapping was hand-coded in three
//! places — `config.rs` (the Table I grid), `tuner.rs` (session wiring)
//! and `dvfs.rs` (the same mapping plus a fourth axis). [`TunableSpace`]
//! is that mapping, once: the Table I triple (threads × schedule × chunk)
//! with an *optional* fourth knob, a per-region frequency limit. A space
//! without a frequency ladder is exactly the paper's 3-knob grid; adding
//! a ladder reproduces the DVFS extension (§VII future work) on the same
//! tuner and backends.
//!
//! Decoding is total over the grid but **not injective**: `Default`
//! choices alias explicit entries (e.g. Crill's `Count(32)` and `Default`
//! both decode to 32 threads) and the implementation-default schedule
//! ignores the chunk knob. [`TunableSpace::encode`] therefore guarantees
//! only `decode(encode(cfg)) == cfg` for decodable configurations, which
//! is the invariant the property tests pin.

use crate::config::{ConfigSpace, OmpConfig};
use arcs_harmony::{Param, Point, SearchSpace};
use arcs_powersim::Machine;
use serde::{Deserialize, Serialize};

/// A concrete configuration across every tunable knob: the paper's OpenMP
/// triple plus the optional frequency limit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TunedConfig {
    pub omp: OmpConfig,
    /// `None` = run at whatever the power cap allows (the base ARCS
    /// behaviour); `Some(f)` = additionally clamp the cores to `f` GHz.
    pub freq_ghz: Option<f64>,
}

impl From<OmpConfig> for TunedConfig {
    fn from(omp: OmpConfig) -> Self {
        TunedConfig { omp, freq_ghz: None }
    }
}

impl std::fmt::Display for TunedConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.freq_ghz {
            Some(g) => write!(f, "{}, {:.2}GHz", self.omp, g),
            None => write!(f, "{}, fmax", self.omp),
        }
    }
}

/// The discrete grid a tuner searches: the Table I [`ConfigSpace`] plus an
/// optional frequency axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TunableSpace {
    pub base: ConfigSpace,
    /// Frequency choices in GHz; `None` = uncapped (run at the cap's f).
    /// An *empty* ladder removes the knob entirely — points are 3-long and
    /// every decoded configuration has `freq_ghz: None`.
    pub freqs_ghz: Vec<Option<f64>>,
}

impl From<ConfigSpace> for TunableSpace {
    fn from(base: ConfigSpace) -> Self {
        TunableSpace { base, freqs_ghz: Vec::new() }
    }
}

impl TunableSpace {
    /// The paper's 3-knob space over `base` (no frequency knob).
    pub fn new(base: ConfigSpace) -> Self {
        base.into()
    }

    /// The Table I row for `machine`, no frequency knob.
    pub fn for_machine(machine: &Machine) -> Self {
        ConfigSpace::for_machine(machine).into()
    }

    /// The DVFS-extended space: `steps` frequency limits evenly spaced
    /// between the machine's floor and base clock, plus the "uncapped"
    /// choice (which is also the search start point).
    pub fn with_dvfs(machine: &Machine, steps: usize) -> Self {
        assert!(steps >= 1);
        let base = ConfigSpace::for_machine(machine);
        let mut freqs: Vec<Option<f64>> = (0..steps)
            .map(|i| {
                let t = i as f64 / steps as f64;
                Some(machine.f_min_ghz + t * (machine.f_base_ghz - machine.f_min_ghz))
            })
            .collect();
        freqs.push(None);
        TunableSpace { base, freqs_ghz: freqs }
    }

    /// The widened portfolio space for `machine`: the Table I grid with
    /// the schedule axis extended to the self-scheduling families
    /// (trapezoid, factoring, awf), no frequency knob. Opt-in — the stock
    /// `for_machine` grid stays the paper's 252-point Table I.
    pub fn with_portfolio(machine: &Machine) -> Self {
        ConfigSpace::for_machine(machine).with_portfolio().into()
    }

    /// Does this space expose the frequency knob?
    pub fn has_freq_knob(&self) -> bool {
        !self.freqs_ghz.is_empty()
    }

    /// Number of knobs (3, or 4 with a frequency ladder).
    pub fn dim(&self) -> usize {
        if self.has_freq_knob() {
            4
        } else {
            3
        }
    }

    /// Total number of grid points.
    pub fn size(&self) -> usize {
        self.base.size() * self.freqs_ghz.len().max(1)
    }

    /// The Harmony search space: one parameter per knob.
    pub fn to_search_space(&self) -> SearchSpace {
        let mut params = vec![
            Param::new("threads", self.base.threads.len()),
            Param::new("schedule", self.base.schedules.len()),
            Param::new("chunk", self.base.chunks.len()),
        ];
        if self.has_freq_knob() {
            params.push(Param::new("freq", self.freqs_ghz.len()));
        }
        SearchSpace::new(params)
    }

    /// Decode a Harmony grid point into a concrete configuration.
    pub fn decode(&self, point: &[usize]) -> TunedConfig {
        assert_eq!(point.len(), self.dim(), "points in this space are {}-dimensional", self.dim());
        let omp = self.base.decode(&point[..3]);
        let freq_ghz = if self.has_freq_knob() { self.freqs_ghz[point[3]] } else { None };
        TunedConfig { omp, freq_ghz }
    }

    /// Encode a configuration back into a grid point, or `None` if no grid
    /// point decodes to it. Decoding is not injective, so the round-trip
    /// guarantee is `decode(encode(cfg)) == cfg`, not point equality; the
    /// first matching point in grid order is returned. O(grid size).
    pub fn encode(&self, cfg: &TunedConfig) -> Option<Point> {
        self.to_search_space().iter_points().find(|p| self.decode(p) == *cfg)
    }

    /// The grid point encoding the paper's default configuration (default
    /// threads / schedule / chunk, uncapped frequency) — the start point
    /// for simplex searches.
    pub fn default_point(&self) -> Point {
        let mut p = self.base.default_point();
        if self.has_freq_knob() {
            // The ladders built here always end with the uncapped choice;
            // hand-built ladders should follow the same convention so the
            // search starts from the paper's baseline.
            p.push(self.freqs_ghz.len() - 1);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_space_matches_the_config_space() {
        let m = Machine::crill();
        let s = TunableSpace::for_machine(&m);
        assert!(!s.has_freq_knob());
        assert_eq!(s.dim(), 3);
        assert_eq!(s.size(), s.base.size());
        assert_eq!(s.to_search_space().dim(), 3);
        let d = s.decode(&s.default_point());
        assert_eq!(d.freq_ghz, None);
        assert_eq!(d.omp, OmpConfig::default_for(&m));
        assert_eq!(d.omp, s.base.decode(&s.base.default_point()));
    }

    #[test]
    fn dvfs_space_adds_the_fourth_axis() {
        let m = Machine::crill();
        let s = TunableSpace::with_dvfs(&m, 4);
        assert!(s.has_freq_knob());
        assert_eq!(s.to_search_space().dim(), 4);
        assert_eq!(s.freqs_ghz.len(), 5);
        assert_eq!(s.freqs_ghz[4], None);
        assert_eq!(s.size(), s.base.size() * 5);
        let d = s.decode(&s.default_point());
        assert_eq!(d.freq_ghz, None);
        assert_eq!(d.omp, OmpConfig::default_for(&m));
        // Ladder frequencies stay inside the machine's DVFS range.
        for f in s.freqs_ghz.iter().flatten() {
            assert!(*f >= m.f_min_ghz && *f <= m.f_base_ghz);
        }
    }

    #[test]
    fn portfolio_space_covers_the_new_families() {
        let m = Machine::crill();
        let s = TunableSpace::with_portfolio(&m);
        assert_eq!(s.dim(), 3);
        assert_eq!(s.size(), 441);
        assert_eq!(s.decode(&s.default_point()).omp, OmpConfig::default_for(&m));
        // Every self-scheduling family is reachable from the grid.
        for kind in arcs_omprt::ScheduleKind::SELF_SCHEDULING {
            let want = TunedConfig {
                omp: OmpConfig { threads: 8, schedule: arcs_omprt::Schedule::new(kind, Some(16)) },
                freq_ghz: None,
            };
            let p = s.encode(&want).expect("portfolio configs are encodable");
            assert_eq!(s.decode(&p), want);
        }
    }

    #[test]
    fn encode_round_trips_decoded_configs() {
        let m = Machine::crill();
        for s in [TunableSpace::for_machine(&m), TunableSpace::with_dvfs(&m, 2)] {
            let grid = s.to_search_space();
            for p in grid.iter_points() {
                let cfg = s.decode(&p);
                let q = s.encode(&cfg).expect("decoded configs are encodable");
                assert_eq!(s.decode(&q), cfg, "round trip diverged at {p:?}");
            }
        }
    }

    #[test]
    fn encode_rejects_foreign_configs() {
        let m = Machine::crill();
        let s = TunableSpace::for_machine(&m);
        let alien = TunedConfig {
            omp: OmpConfig { threads: 7, schedule: arcs_omprt::Schedule::static_block() },
            freq_ghz: None,
        };
        assert_eq!(s.encode(&alien), None);
    }

    #[test]
    fn from_omp_config_is_uncapped() {
        let m = Machine::crill();
        let cfg: TunedConfig = OmpConfig::default_for(&m).into();
        assert_eq!(cfg.freq_ghz, None);
        assert_eq!(cfg.to_string(), format!("{}, fmax", OmpConfig::default_for(&m)));
    }
}
