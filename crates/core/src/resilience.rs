//! Self-healing knobs for runs under measurement faults.
//!
//! [`ResilienceOptions`] configures every rung of the degradation ladder
//! the driver and tuner climb when the measurement stack misbehaves (see
//! DESIGN.md §3.11):
//!
//! 1. **retry** — a failed meter read is retried up to
//!    [`max_read_retries`](ResilienceOptions::max_read_retries) times,
//!    each retry charging
//!    [`retry_backoff_s`](ResilienceOptions::retry_backoff_s) of §III-C
//!    overhead energy;
//! 2. **reject** — a region measurement whose score deviates from the
//!    region's accepted-score median by more than
//!    [`mad_threshold`](ResilienceOptions::mad_threshold) × MAD is
//!    discarded and the same configuration is re-measured (a value that
//!    *reproduces* on re-measurement is accepted — consistent means real,
//!    not an outlier);
//! 3. **restart** — after
//!    [`restart_after_rejections`](ResilienceOptions::restart_after_rejections)
//!    rejections a region's search session is restarted (reseeded at its
//!    best-known point), at most
//!    [`max_restarts`](ResilienceOptions::max_restarts) times;
//! 4. **freeze** — a region that keeps rejecting past its restart budget
//!    is pinned to its best-known configuration;
//! 5. **degrade** — once
//!    [`error_budget`](ResilienceOptions::error_budget) hard meter
//!    faults have been absorbed, the whole tuner freezes and the run
//!    completes with [`RunStatus::Degraded`](crate::report::RunStatus)
//!    instead of erroring.
//!
//! The [`Default`] options disable every rung, so a run without an
//! attached [`arcs_powersim::FaultPlan`] and without explicit resilience
//! behaves bit-identically to one built before this layer existed.

use serde::{Deserialize, Serialize};

/// Retry / outlier-rejection / degradation policy for one run. All
/// fields are plain data; the struct is freely copyable and attaches to
/// a [`Runner`](crate::backend::Runner) via
/// [`Runner::resilience`](crate::backend::Runner::resilience) (which
/// also forwards it to an attached tuner).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResilienceOptions {
    /// Retries after a failed package-meter read before the failure is
    /// counted as a *hard* fault. 0 disables retrying.
    pub max_read_retries: u32,
    /// Seconds of §III-C-style overhead charged per retry (linear
    /// backoff: the n-th retry charges `n × retry_backoff_s`). Charged
    /// as energy through
    /// [`Backend::charge_overhead`](crate::backend::Backend::charge_overhead);
    /// the driver clock is not advanced.
    pub retry_backoff_s: f64,
    /// Accepted measurements collected per search point before the
    /// median is reported to the session. 1 reports every accepted
    /// measurement directly.
    pub measure_k: usize,
    /// Reject a measurement when `|score − median| > mad_threshold ×
    /// MAD` over the region's accepted-score window. 0 disables
    /// rejection.
    pub mad_threshold: f64,
    /// Size of the per-region accepted-score window the median/MAD are
    /// computed over.
    pub outlier_window: usize,
    /// Hard meter faults absorbed (the read is answered with the last
    /// known meter value) before the tuner freezes and the run degrades.
    /// `None` means hard faults are run errors
    /// ([`RunError::Measure`](crate::backend::RunError)).
    pub error_budget: Option<u64>,
    /// Rejections a region tolerates before its search session is
    /// restarted. 0 disables restarting (and freezing).
    pub restart_after_rejections: u32,
    /// Session restarts a region may spend before it is frozen to its
    /// best-known configuration.
    pub max_restarts: u32,
}

impl Default for ResilienceOptions {
    /// Everything disabled: no retries, no rejection, no budget —
    /// faults surface exactly as they did before this layer existed.
    fn default() -> Self {
        ResilienceOptions {
            max_read_retries: 0,
            retry_backoff_s: 0.0,
            measure_k: 1,
            mad_threshold: 0.0,
            outlier_window: 16,
            error_budget: None,
            restart_after_rejections: 0,
            max_restarts: 0,
        }
    }
}

impl ResilienceOptions {
    /// The reference self-healing preset used by `arcs-sim chaos`:
    /// 3 retries with 0.1 ms linear backoff, MAD-4 outlier rejection
    /// over a 16-score window, session restart after 6 rejections (at
    /// most twice, then freeze), and a 16-hard-fault budget before the
    /// run degrades.
    pub fn standard() -> Self {
        ResilienceOptions {
            max_read_retries: 3,
            retry_backoff_s: 1e-4,
            measure_k: 1,
            mad_threshold: 4.0,
            outlier_window: 16,
            error_budget: Some(16),
            restart_after_rejections: 6,
            max_restarts: 2,
        }
    }

    /// Is any recovery rung enabled?
    pub fn any_enabled(&self) -> bool {
        *self != ResilienceOptions::default()
    }
}

/// Median of a slice (the slice is sorted in place). Empty slices
/// return 0.
pub(crate) fn median_in_place(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(f64::total_cmp);
    let mid = values.len() / 2;
    if values.len() % 2 == 1 {
        values[mid]
    } else {
        0.5 * (values[mid - 1] + values[mid])
    }
}

/// Median and median-absolute-deviation of a slice.
pub(crate) fn median_and_mad(values: &[f64]) -> (f64, f64) {
    let mut sorted: Vec<f64> = values.to_vec();
    let med = median_in_place(&mut sorted);
    let mut devs: Vec<f64> = values.iter().map(|v| (v - med).abs()).collect();
    let mad = median_in_place(&mut devs);
    (med, mad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_disables_every_rung() {
        let d = ResilienceOptions::default();
        assert_eq!(d.max_read_retries, 0);
        assert_eq!(d.measure_k, 1);
        assert_eq!(d.mad_threshold, 0.0);
        assert_eq!(d.error_budget, None);
        assert_eq!(d.restart_after_rejections, 0);
        assert!(!d.any_enabled());
        assert!(ResilienceOptions::standard().any_enabled());
    }

    #[test]
    fn options_roundtrip_through_json() {
        let s = ResilienceOptions::standard();
        let json = serde_json::to_string(&s).unwrap();
        let back: ResilienceOptions = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn median_handles_odd_even_and_empty() {
        assert_eq!(median_in_place(&mut []), 0.0);
        assert_eq!(median_in_place(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median_in_place(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn mad_is_robust_to_one_outlier() {
        let values = [1.0, 1.1, 0.9, 1.05, 0.95, 100.0];
        let (med, mad) = median_and_mad(&values);
        assert!((med - 1.025).abs() < 1e-9, "median {med}");
        // The outlier deviates by ~99 while the MAD stays small.
        assert!(mad < 0.2, "mad {mad}");
        assert!((100.0 - med).abs() > 4.0 * mad);
    }
}
