//! The sweep engine: declarative (workload × cap × strategy) grids run
//! concurrently over a shared memo cache.
//!
//! Every paper figure is some such grid — Fig. 4 is SP × 5 caps × 3
//! strategies, Fig. 8 adds a second machine, the extension suite adds a
//! selective-tuning strategy. Instead of hand-rolled nested loops per
//! figure, a [`SweepGrid`] names the axes and [`SweepEngine::run`]
//! expands, executes and collects the cells.
//!
//! Determinism: each cell runs on *fresh* executors (invocation counters
//! start at zero, noise is stateless), so a cell's [`AppRunReport`] is a
//! pure function of (machine, workload, cap, strategy, noise) — identical
//! whether cells run serially or on a worker pool, in any interleaving.
//! The only shared state is the [`SharedSimCache`], whose values are
//! deterministic and value-identical regardless of which cell computes
//! them. `with_workers(1)` gives the serial order for direct comparison.

use crate::backend::Runner;
use crate::config::OmpConfig;
use crate::executor::{runs, SimExecutor};
use crate::report::AppRunReport;
use crate::tuner::{RegionTuner, TunerOptions};
use arcs_harmony::History;
use arcs_metrics::MetricsRegistry;
use arcs_powersim::{CacheSnapshot, Machine, SharedSimCache, WorkloadDescriptor};
use arcs_trace::{Objective, TraceSink};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// How one sweep cell tunes (or doesn't).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SweepStrategy {
    /// The paper's baseline configuration, untouched.
    Default,
    /// ARCS-Online (Nelder–Mead within the measured run).
    Online,
    /// ARCS-Offline (exhaustive training, then a measured replay).
    Offline,
    /// ARCS-Online with selective tuning: regions whose mean time falls
    /// below the threshold are pinned to default and pay no overheads.
    OnlineSelective { min_region_time_s: f64 },
}

impl SweepStrategy {
    pub fn label(&self) -> &'static str {
        match self {
            SweepStrategy::Default => "default",
            SweepStrategy::Online => "arcs-online",
            SweepStrategy::Offline => "arcs-offline",
            SweepStrategy::OnlineSelective { .. } => "arcs-online-selective",
        }
    }
}

/// A declarative sweep: the full cross product of the axes, on one
/// machine, optionally under measurement noise `(cv, seed)`.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    pub machine: Machine,
    pub workloads: Vec<WorkloadDescriptor>,
    pub caps_w: Vec<f64>,
    pub strategies: Vec<SweepStrategy>,
    /// Objectives to score each (workload, cap, strategy) cell by.
    /// Defaults to `[Time]` — the paper's axis; an empty vector is treated
    /// the same way.
    pub objectives: Vec<Objective>,
    pub noise: Option<(f64, u64)>,
}

impl SweepGrid {
    pub fn new(machine: Machine) -> Self {
        SweepGrid {
            machine,
            workloads: Vec::new(),
            caps_w: Vec::new(),
            strategies: Vec::new(),
            objectives: vec![Objective::Time],
            noise: None,
        }
    }

    pub fn workload(mut self, wl: WorkloadDescriptor) -> Self {
        self.workloads.push(wl);
        self
    }

    pub fn caps(mut self, caps_w: &[f64]) -> Self {
        self.caps_w.extend_from_slice(caps_w);
        self
    }

    pub fn strategies(mut self, strategies: &[SweepStrategy]) -> Self {
        self.strategies.extend_from_slice(strategies);
        self
    }

    /// Replace the objective axis (the default is `[Time]`).
    pub fn objectives(mut self, objectives: &[Objective]) -> Self {
        self.objectives = objectives.to_vec();
        self
    }

    pub fn with_noise(mut self, cv: f64, seed: u64) -> Self {
        self.noise = Some((cv, seed));
        self
    }

    pub fn cell_count(&self) -> usize {
        self.workloads.len()
            * self.caps_w.len()
            * self.strategies.len()
            * self.objectives.len().max(1)
    }
}

/// One executed grid cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    pub workload: String,
    pub cap_w: f64,
    pub strategy: SweepStrategy,
    pub objective: Objective,
    pub report: AppRunReport,
    /// The exported training history (Offline cells only).
    pub history: Option<History<OmpConfig>>,
}

/// All cells of a sweep plus cache effectiveness over the run.
#[derive(Debug)]
pub struct SweepReport {
    /// Workload-major, then cap, then strategy — the declaration order.
    pub cells: Vec<CellResult>,
    /// Memo-cache activity: hits/misses accumulated by this sweep alone,
    /// occupancy and interner size as of its end.
    pub cache: CacheSnapshot,
    pub workers: usize,
}

impl SweepReport {
    /// The cell for (workload, cap, strategy-label), if present. With a
    /// multi-objective grid this returns the first match in declaration
    /// order; use [`SweepReport::cell_for`] to pin the objective.
    pub fn cell(&self, workload: &str, cap_w: f64, strategy: &str) -> Option<&CellResult> {
        self.cells
            .iter()
            .find(|c| c.workload == workload && c.cap_w == cap_w && c.strategy.label() == strategy)
    }

    /// The cell for (workload, cap, strategy-label, objective), if present.
    pub fn cell_for(
        &self,
        workload: &str,
        cap_w: f64,
        strategy: &str,
        objective: Objective,
    ) -> Option<&CellResult> {
        self.cells.iter().find(|c| {
            c.workload == workload
                && c.cap_w == cap_w
                && c.strategy.label() == strategy
                && c.objective == objective
        })
    }
}

/// Runs sweep grids for one machine over one shared memo cache.
pub struct SweepEngine {
    machine: Machine,
    cache: Arc<SharedSimCache>,
    workers: usize,
    trace: Option<Arc<dyn TraceSink>>,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl SweepEngine {
    pub fn new(machine: Machine) -> Self {
        let cache = Arc::new(SharedSimCache::new(&machine.name));
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8);
        SweepEngine { machine, cache, workers, trace: None, metrics: None }
    }

    /// Fix the worker-pool size (1 = serial, for determinism checks).
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers >= 1);
        self.workers = workers;
        self
    }

    /// Trace every cell's execution into `sink`. Cells run concurrently,
    /// so events from different cells interleave; order within one cell is
    /// preserved by the sink's sequence numbers only relative to the other
    /// cells' records.
    pub fn with_trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.cache.attach_trace(Arc::clone(&sink));
        self.trace = Some(sink);
        self
    }

    /// Aggregate every cell's counters into `registry`. Counters are
    /// lossless under concurrency, so totals are identical at any worker
    /// count (unlike a trace, there is no interleaving to worry about).
    pub fn with_metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.cache.attach_metrics(&registry);
        self.metrics = Some(registry);
        self
    }

    /// The cache shared by every cell this engine runs.
    pub fn cache(&self) -> &Arc<SharedSimCache> {
        &self.cache
    }

    /// Execute every cell of `grid` and collect the results in declaration
    /// order. Cells are distributed over the worker pool; see the module
    /// docs for why the outcome is identical at any worker count.
    pub fn run(&self, grid: &SweepGrid) -> SweepReport {
        assert_eq!(
            grid.machine.name, self.machine.name,
            "one engine serves one machine model (its cache is machine-specific)"
        );
        // The objective axis is innermost so a default `[Time]` grid keeps
        // the historical (workload, cap, strategy) declaration order.
        let objectives: &[Objective] =
            if grid.objectives.is_empty() { &[Objective::Time] } else { &grid.objectives };
        let mut cells: Vec<(&WorkloadDescriptor, f64, SweepStrategy, Objective)> = Vec::new();
        for wl in &grid.workloads {
            for &cap in &grid.caps_w {
                for &strat in &grid.strategies {
                    for &objective in objectives {
                        cells.push((wl, cap, strat, objective));
                    }
                }
            }
        }

        let before = self.cache.stats();
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<CellResult>>> =
            cells.iter().map(|_| Mutex::new(None)).collect();
        let workers = self.workers.min(cells.len()).max(1);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(wl, cap, strat, objective)) = cells.get(idx) else {
                        break;
                    };
                    let result = self.run_cell(wl, cap, strat, objective, grid.noise);
                    *slots[idx].lock() = Some(result);
                });
            }
        });
        let results =
            slots.into_iter().map(|slot| slot.into_inner().expect("every cell ran")).collect();
        SweepReport { cells: results, cache: self.cache.stats().delta_since(&before), workers }
    }

    fn executor(&self, cap_w: f64, noise: Option<(f64, u64)>) -> SimExecutor {
        let mut exec = SimExecutor::new(self.machine.clone(), cap_w)
            .with_shared_cache(Arc::clone(&self.cache));
        if let Some((cv, seed)) = noise {
            exec = exec.with_noise(cv, seed);
        }
        if let Some(sink) = &self.trace {
            exec = exec.with_trace(Arc::clone(sink));
        }
        if let Some(registry) = &self.metrics {
            exec = exec.with_metrics(Arc::clone(registry));
        }
        exec
    }

    fn run_cell(
        &self,
        wl: &WorkloadDescriptor,
        cap_w: f64,
        strategy: SweepStrategy,
        objective: Objective,
        noise: Option<(f64, u64)>,
    ) -> CellResult {
        // Time cells go through the exact `runs::*` code path the paper
        // figures use, so adding the objective axis cannot perturb them.
        let (report, history) = if objective == Objective::Time {
            match strategy {
                SweepStrategy::Default => {
                    (runs::default_run_on(&mut self.executor(cap_w, noise), wl), None)
                }
                SweepStrategy::Online => {
                    (runs::online_run_on(&mut self.executor(cap_w, noise), wl), None)
                }
                SweepStrategy::Offline => {
                    let (rep, h) = runs::offline_run_on(
                        &mut self.executor(cap_w, noise),
                        &mut self.executor(cap_w, noise),
                        wl,
                    );
                    (rep, Some(h))
                }
                SweepStrategy::OnlineSelective { min_region_time_s } => {
                    let space = crate::config::ConfigSpace::for_machine(&self.machine);
                    let mut tuner = RegionTuner::new(
                        TunerOptions::online(space).with_min_region_time(min_region_time_s),
                    );
                    let mut rep = self.executor(cap_w, noise).run_tuned(wl, &mut tuner);
                    rep.strategy = strategy.label().into();
                    (rep, None)
                }
            }
        } else {
            self.run_cell_for_objective(wl, cap_w, strategy, objective, noise)
        };
        CellResult { workload: wl.name.clone(), cap_w, strategy, objective, report, history }
    }

    /// The non-`Time` arm of [`SweepEngine::run_cell`]: the same four
    /// strategies, with every tuner session scored by `objective`.
    fn run_cell_for_objective(
        &self,
        wl: &WorkloadDescriptor,
        cap_w: f64,
        strategy: SweepStrategy,
        objective: Objective,
        noise: Option<(f64, u64)>,
    ) -> (AppRunReport, Option<History<OmpConfig>>) {
        let space = crate::config::ConfigSpace::for_machine(&self.machine);
        match strategy {
            SweepStrategy::Default => {
                let mut exec = self.executor(cap_w, noise);
                let rep = Runner::new(&mut exec)
                    .workload(wl)
                    .objective(objective)
                    .run()
                    .expect("workload is set");
                (rep, None)
            }
            SweepStrategy::Online => {
                let mut tuner =
                    RegionTuner::new(TunerOptions::online(space).with_objective(objective));
                let mut rep = self.executor(cap_w, noise).run_tuned(wl, &mut tuner);
                rep.strategy = "arcs-online".into();
                (rep, None)
            }
            SweepStrategy::Offline => {
                let mut trainer = self.executor(cap_w, noise);
                let context = format!("{}.{}.{}W.{}", wl.name, self.machine.name, cap_w, objective);
                let history = trainer.train_offline(
                    wl,
                    TunerOptions::offline_train(space.clone()).with_objective(objective),
                    &context,
                );
                let mut tuner = RegionTuner::new(
                    TunerOptions::offline_replay(space, history.clone()).with_objective(objective),
                );
                let mut rep = self.executor(cap_w, noise).run_tuned(wl, &mut tuner);
                rep.strategy = "arcs-offline".into();
                (rep, Some(history))
            }
            SweepStrategy::OnlineSelective { min_region_time_s } => {
                let mut tuner = RegionTuner::new(
                    TunerOptions::online(space)
                        .with_min_region_time(min_region_time_s)
                        .with_objective(objective),
                );
                let mut rep = self.executor(cap_w, noise).run_tuned(wl, &mut tuner);
                rep.strategy = strategy.label().into();
                (rep, None)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arcs_kernels::{model, Class};

    fn grid(machine: Machine) -> SweepGrid {
        let mut wl = model::sp(Class::B);
        wl.timesteps = 8;
        SweepGrid::new(machine)
            .workload(wl)
            .caps(&[85.0, 115.0])
            .strategies(&[SweepStrategy::Default, SweepStrategy::Online])
    }

    #[test]
    fn cells_come_back_in_declaration_order() {
        let m = Machine::crill();
        let rep = SweepEngine::new(m.clone()).run(&grid(m));
        assert_eq!(rep.cells.len(), 4);
        let labels: Vec<_> = rep.cells.iter().map(|c| (c.cap_w, c.strategy.label())).collect();
        assert_eq!(
            labels,
            vec![
                (85.0, "default"),
                (85.0, "arcs-online"),
                (115.0, "default"),
                (115.0, "arcs-online"),
            ]
        );
        assert!(rep.cell("sp.B", 85.0, "default").is_some());
        assert!(rep.cell("sp.B", 85.0, "oracle").is_none());
    }

    #[test]
    fn engine_rejects_foreign_machine_grids() {
        let engine = SweepEngine::new(Machine::crill());
        let foreign = grid(Machine::minotaur());
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine.run(&foreign)));
        assert!(err.is_err());
    }

    #[test]
    fn objective_axis_multiplies_cells_and_keeps_time_cells_first() {
        let m = Machine::crill();
        let g = grid(m.clone()).objectives(&[Objective::Time, Objective::Energy]);
        assert_eq!(g.cell_count(), 8);
        let rep = SweepEngine::new(m).with_workers(1).run(&g);
        assert_eq!(rep.cells.len(), 8);
        // Objective is the innermost axis: Time before Energy per cell.
        assert_eq!(rep.cells[0].objective, Objective::Time);
        assert_eq!(rep.cells[1].objective, Objective::Energy);
        let e = rep.cell_for("sp.B", 85.0, "arcs-online", Objective::Energy).unwrap();
        assert_eq!(e.report.objective, Objective::Energy);
        let t = rep.cell_for("sp.B", 85.0, "arcs-online", Objective::Time).unwrap();
        assert_eq!(t.report.objective, Objective::Time);
        // Both cells really ran (behavioural comparisons live in
        // tests/objectives.rs, where searches are given room to converge).
        assert!(e.report.energy_j > 0.0 && t.report.energy_j > 0.0);
    }

    #[test]
    fn default_cells_share_cache_work() {
        // Two workloads share regions with the default cell of the other
        // cap? No — but a Default cell re-invokes the same 5 configs every
        // timestep, and the Online cell at the same cap revisits many of
        // them. The sweep must report cross-cell hits.
        let m = Machine::crill();
        let engine = SweepEngine::new(m.clone());
        let rep = engine.run(&grid(m));
        assert!(rep.cache.hits > 0);
        assert!(rep.cache.misses > 0);
        assert!(rep.workers >= 1);
    }
}
