//! Shared fault-ordinal bookkeeping for [`FaultPlan`]-aware backends.
//!
//! A [`FaultPlan`] is stateless — every decision
//! is a pure function of (seed, fault class, key, ordinal). What each
//! backend must supply is the *ordinals*: how many meter reads have
//! happened this run, which run-wide invocation is executing, and whether
//! a dropped sample has armed a stale read. PR 5 grew that bookkeeping
//! twice (once in `SimExecutor`, once in `LiveExecutor`), character for
//! character; [`FaultClock`] is the single shared copy, so a third
//! backend (the broker's per-node executors) cannot drift from the other
//! two.
//!
//! The contract that keeps one plan perturbing every backend identically:
//!
//! * ordinals reset at `begin_run`, so the fault schedule is a pure
//!   function of the run's event sequence, not of executor history;
//! * *every* meter-read attempt advances the read ordinal, including
//!   driver retries — which is what turns long failure bursts into hard
//!   faults;
//! * the run-wide invocation ordinal advances exactly once per region
//!   invocation (it keys the cap schedule).

use arcs_powersim::{FaultPlan, InvocationFaults};

/// What the fault plan says one meter read should do: fail outright
/// (carrying the read ordinal for the fault breadcrumb), or answer with
/// the previous value without resampling. How a "stale" answer is
/// produced stays per-backend — the simulator replays its unwrapped
/// counter, the live path replays the last value handed out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeterFault {
    /// The read fails; the payload is the read ordinal that failed.
    Fail(u64),
    /// The read must answer the stale (previous) meter value.
    Stale,
}

/// Runtime state for an attached [`FaultPlan`]: the plan decides, this
/// tracks the ordinals the decisions key on.
#[derive(Debug, Clone)]
pub struct FaultClock {
    plan: FaultPlan,
    /// Meter reads so far this run (every read attempt counts).
    read_ordinal: u64,
    /// Run-wide region invocation counter (the cap schedule's key).
    global_ordinal: u64,
    /// Pending stale meter reads from dropped samples.
    stale_reads: u32,
}

impl FaultClock {
    pub fn new(plan: FaultPlan) -> Self {
        FaultClock { plan, read_ordinal: 0, global_ordinal: 0, stale_reads: 0 }
    }

    /// Reset every ordinal so the next run replays the plan from the top.
    pub fn begin_run(&mut self) {
        self.read_ordinal = 0;
        self.global_ordinal = 0;
        self.stale_reads = 0;
    }

    /// The plan's decisions for the next region invocation. Advances the
    /// run-wide ordinal; call exactly once per invocation.
    pub fn invocation_faults(&mut self, region: &str, invocation: u64) -> InvocationFaults {
        let g = self.global_ordinal;
        self.global_ordinal += 1;
        self.plan.invocation_faults(region, invocation, g)
    }

    /// Arm one stale meter read (a dropped sample: the next read answers
    /// the previous value). Repeated drops before a read still arm one.
    pub fn arm_stale_read(&mut self) {
        self.stale_reads = self.stale_reads.max(1);
    }

    /// The plan's decision for the next meter read. Advances the read
    /// ordinal; call exactly once per read attempt (retries included).
    pub fn meter_fault(&mut self) -> Option<MeterFault> {
        let ord = self.read_ordinal;
        self.read_ordinal += 1;
        if self.plan.rapl_read_fails(ord) {
            Some(MeterFault::Fail(ord))
        } else if self.stale_reads > 0 {
            self.stale_reads -= 1;
            Some(MeterFault::Stale)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arcs_powersim::FaultPlan;

    fn bursty_plan() -> FaultPlan {
        let mut plan = FaultPlan::new(11);
        plan.rapl_fault_rate = 0.3;
        plan
    }

    #[test]
    fn read_ordinals_replay_the_plan_exactly() {
        let plan = bursty_plan();
        let mut clock = FaultClock::new(plan.clone());
        let direct: Vec<bool> = (0..64).map(|o| plan.rapl_read_fails(o)).collect();
        let via_clock: Vec<bool> =
            (0..64).map(|_| matches!(clock.meter_fault(), Some(MeterFault::Fail(_)))).collect();
        assert_eq!(direct, via_clock);
    }

    #[test]
    fn begin_run_resets_every_ordinal() {
        let mut clock = FaultClock::new(bursty_plan());
        let first: Vec<Option<MeterFault>> = (0..16).map(|_| clock.meter_fault()).collect();
        let _ = clock.invocation_faults("r", 0);
        clock.arm_stale_read();
        clock.begin_run();
        let second: Vec<Option<MeterFault>> = (0..16).map(|_| clock.meter_fault()).collect();
        assert_eq!(first, second, "a reset clock replays the schedule from the top");
    }

    #[test]
    fn stale_reads_arm_once_and_drain_once() {
        // A plan that never fails reads isolates the stale path.
        let mut clock = FaultClock::new(FaultPlan::new(5));
        assert_eq!(clock.meter_fault(), None);
        clock.arm_stale_read();
        clock.arm_stale_read(); // repeated drops before a read still arm one
        assert_eq!(clock.meter_fault(), Some(MeterFault::Stale));
        assert_eq!(clock.meter_fault(), None);
    }

    #[test]
    fn global_ordinal_advances_once_per_invocation() {
        // A cap scheduled at global ordinal 2 fires on the third
        // invocation regardless of which region runs it.
        let mut plan = FaultPlan::new(7);
        plan.cap_schedule.push(arcs_powersim::CapFault { at_invocation: 2, cap_w: 60.0 });
        let mut clock = FaultClock::new(plan);
        assert_eq!(clock.invocation_faults("a", 0).cap_change_w, None);
        assert_eq!(clock.invocation_faults("b", 0).cap_change_w, None);
        assert_eq!(clock.invocation_faults("a", 1).cap_change_w, Some(60.0));
    }
}
