//! DVFS extension: per-region frequency selection as a fourth knob.
//!
//! The paper's future work (§VII): *"Currently, we are not looking into
//! the DVFS (Dynamic Voltage Frequency Scaling) strategy. We plan to
//! include this policy in the future."* This module adds it on top of the
//! simulator backend: the search space becomes
//! threads × schedule × chunk × **frequency limit**, and the objective is
//! selectable — execution time (the paper's), energy, or energy-delay
//! product. For memory-bound regions a frequency below what the power cap
//! allows costs almost no time (stalls don't scale with the clock) and
//! saves real energy — which is exactly what the tuner discovers.

use crate::config::{ConfigSpace, OmpConfig};
use arcs_harmony::{Param, Point, SearchSpace, Session, StrategyKind};
use arcs_powersim::{simulate_region_at_freq, Machine, RegionModel, SimReport};
use serde::{Deserialize, Serialize};

/// A configuration extended with an optional per-region frequency limit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DvfsConfig {
    pub omp: OmpConfig,
    /// `None` = run at whatever the power cap allows (the base ARCS
    /// behaviour); `Some(f)` = additionally clamp the cores to `f` GHz.
    pub freq_ghz: Option<f64>,
}

impl std::fmt::Display for DvfsConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.freq_ghz {
            Some(g) => write!(f, "{}, {:.2}GHz", self.omp, g),
            None => write!(f, "{}, fmax", self.omp),
        }
    }
}

/// What the extended tuner optimises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// Region execution time — the paper's objective.
    Time,
    /// Package + DRAM energy of the invocation.
    Energy,
    /// Energy × time (EDP): the usual efficiency compromise.
    EnergyDelay,
}

impl Objective {
    pub fn score(&self, rep: &SimReport) -> f64 {
        match self {
            Objective::Time => rep.time_s,
            Objective::Energy => rep.energy_j,
            Objective::EnergyDelay => rep.energy_j * rep.time_s,
        }
    }
}

/// The extended search space: the Table I grid plus a frequency axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DvfsSpace {
    pub base: ConfigSpace,
    /// Frequency choices in GHz; `None` = uncapped (run at the cap's f).
    pub freqs_ghz: Vec<Option<f64>>,
}

impl DvfsSpace {
    /// Frequency steps between the machine's floor and base clock, plus
    /// the "uncapped" choice.
    pub fn for_machine(machine: &Machine, steps: usize) -> Self {
        assert!(steps >= 1);
        let base = ConfigSpace::for_machine(machine);
        let mut freqs: Vec<Option<f64>> = (0..steps)
            .map(|i| {
                let t = i as f64 / steps as f64;
                Some(machine.f_min_ghz + t * (machine.f_base_ghz - machine.f_min_ghz))
            })
            .collect();
        freqs.push(None);
        DvfsSpace { base, freqs_ghz: freqs }
    }

    pub fn to_search_space(&self) -> SearchSpace {
        let mut params = vec![
            Param::new("threads", self.base.threads.len()),
            Param::new("schedule", self.base.schedules.len()),
            Param::new("chunk", self.base.chunks.len()),
            Param::new("freq", self.freqs_ghz.len()),
        ];
        params.shrink_to_fit();
        SearchSpace::new(params)
    }

    pub fn decode(&self, point: &[usize]) -> DvfsConfig {
        assert_eq!(point.len(), 4, "DVFS points are (threads, schedule, chunk, freq)");
        DvfsConfig { omp: self.base.decode(&point[..3]), freq_ghz: self.freqs_ghz[point[3]] }
    }

    /// The default point: base default configuration at uncapped frequency.
    pub fn default_point(&self) -> Point {
        let mut p = self.base.default_point();
        p.push(self.freqs_ghz.len() - 1);
        p
    }
}

/// Result of tuning one region with the extended space.
#[derive(Debug, Clone)]
pub struct DvfsOutcome {
    pub config: DvfsConfig,
    pub report: SimReport,
    pub evaluations: usize,
}

/// Exhaustively tune one region over the extended space for `objective`.
pub fn tune_region(
    machine: &Machine,
    cap_w: f64,
    region: &RegionModel,
    space: &DvfsSpace,
    objective: Objective,
    strategy: StrategyKind,
) -> DvfsOutcome {
    let grid = space.to_search_space();
    let mut session = Session::new(grid, strategy, space.default_point());
    let mut best: Option<(DvfsConfig, SimReport, f64)> = None;
    let mut evals = 0usize;
    let limit = space.base.size() * space.freqs_ghz.len() + 16;
    while !session.converged() && evals < limit {
        let p = session.next_point();
        if !session.awaiting_report() {
            break;
        }
        let cfg = space.decode(&p);
        let rep = simulate_region_at_freq(machine, cap_w, region, cfg.omp.as_sim(), cfg.freq_ghz);
        let score = objective.score(&rep);
        evals += 1;
        if best.as_ref().is_none_or(|(_, _, b)| score < *b) {
            best = Some((cfg, rep.clone(), score));
        }
        session.report(score);
    }
    let (config, report, _) = best.expect("at least one evaluation");
    DvfsOutcome { config, report, evaluations: evals }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arcs_kernels::{model, Class};

    fn z_solve() -> RegionModel {
        model::sp(Class::B).step.into_iter().find(|r| r.name.ends_with("z_solve")).unwrap()
    }

    #[test]
    fn space_has_four_axes() {
        let m = Machine::crill();
        let s = DvfsSpace::for_machine(&m, 4);
        assert_eq!(s.to_search_space().dim(), 4);
        assert_eq!(s.freqs_ghz.len(), 5);
        assert_eq!(s.freqs_ghz[4], None);
        let d = s.decode(&s.default_point());
        assert_eq!(d.freq_ghz, None);
        assert_eq!(d.omp, OmpConfig::default_for(&m));
    }

    #[test]
    fn energy_objective_picks_lower_frequency_for_memory_bound_region() {
        let m = Machine::crill();
        let s = DvfsSpace::for_machine(&m, 4);
        let region = z_solve();
        let time_best =
            tune_region(&m, 115.0, &region, &s, Objective::Time, StrategyKind::exhaustive());
        let energy_best =
            tune_region(&m, 115.0, &region, &s, Objective::Energy, StrategyKind::exhaustive());
        // The energy optimum uses no more energy than the time optimum...
        assert!(energy_best.report.energy_j <= time_best.report.energy_j + 1e-9);
        // ...and for this stall-dominated region it prefers a clamped clock.
        assert!(
            energy_best.config.freq_ghz.is_some(),
            "expected a DVFS clamp, got {}",
            energy_best.config
        );
        // Time optimum never clocks below the energy optimum's choice.
        assert!(time_best.report.time_s <= energy_best.report.time_s + 1e-12);
    }

    #[test]
    fn dvfs_cannot_beat_unclamped_time() {
        // Clamping frequency can only slow a region down; the Time
        // objective must therefore land on "uncapped" or tie it.
        let m = Machine::crill();
        let s = DvfsSpace::for_machine(&m, 3);
        let region = z_solve();
        let best = tune_region(&m, 85.0, &region, &s, Objective::Time, StrategyKind::exhaustive());
        let uncapped = tune_region(
            &m,
            85.0,
            &region,
            &DvfsSpace { base: s.base.clone(), freqs_ghz: vec![None] },
            Objective::Time,
            StrategyKind::exhaustive(),
        );
        assert!(best.report.time_s <= uncapped.report.time_s + 1e-12);
    }

    #[test]
    fn edp_sits_between_time_and_energy() {
        let m = Machine::crill();
        let s = DvfsSpace::for_machine(&m, 4);
        let region = z_solve();
        let t = tune_region(&m, 115.0, &region, &s, Objective::Time, StrategyKind::exhaustive());
        let e = tune_region(&m, 115.0, &region, &s, Objective::Energy, StrategyKind::exhaustive());
        let edp =
            tune_region(&m, 115.0, &region, &s, Objective::EnergyDelay, StrategyKind::exhaustive());
        assert!(edp.report.time_s + 1e-12 >= t.report.time_s);
        assert!(edp.report.energy_j + 1e-9 >= e.report.energy_j);
    }

    #[test]
    fn nelder_mead_works_on_the_extended_space() {
        let m = Machine::crill();
        let s = DvfsSpace::for_machine(&m, 4);
        let region = z_solve();
        let nm = tune_region(&m, 85.0, &region, &s, Objective::Energy, StrategyKind::nelder_mead());
        let ex = tune_region(&m, 85.0, &region, &s, Objective::Energy, StrategyKind::exhaustive());
        assert!(
            nm.evaluations < ex.evaluations / 3,
            "NM {} vs exhaustive {}",
            nm.evaluations,
            ex.evaluations
        );
        // NM is a local method on a 4-D discrete space: it must clearly
        // beat the default configuration even if it misses the global
        // optimum by some margin.
        let default_rep =
            simulate_region_at_freq(&m, 85.0, &region, OmpConfig::default_for(&m).as_sim(), None);
        assert!(
            nm.report.energy_j < default_rep.energy_j * 0.95,
            "NM {} vs default {}",
            nm.report.energy_j,
            default_rep.energy_j
        );
        assert!(nm.report.energy_j <= ex.report.energy_j * 1.6);
    }
}
