//! DVFS extension: per-region frequency selection as a fourth knob.
//!
//! The paper's future work (§VII): *"Currently, we are not looking into
//! the DVFS (Dynamic Voltage Frequency Scaling) strategy. We plan to
//! include this policy in the future."* This module adds it on top of the
//! simulator backend: the search space becomes
//! threads × schedule × chunk × **frequency limit**, and the objective is
//! selectable — execution time (the paper's), energy, or energy-delay
//! product. For memory-bound regions a frequency below what the power cap
//! allows costs almost no time (stalls don't scale with the clock) and
//! saves real energy — which is exactly what the tuner discovers.
//!
//! The encoding ([`TunableSpace`]) and the objective ([`Objective`]) are
//! mainline abstractions shared with the base tuner; this module only
//! keeps the DVFS-flavoured names and a convenience driver that tunes a
//! single region through the standard [`RegionTuner`] + [`Runner`] stack,
//! so DVFS runs emit the same trace and metrics taxonomy as everything
//! else.

use crate::backend::Runner;
use crate::executor::SimExecutor;
use crate::tunable::TunableSpace;
use crate::tuner::{RegionTuner, TunerOptions, TuningMode};
use arcs_powersim::{simulate_region_at_freq, Machine, RegionModel, SimReport, WorkloadDescriptor};
pub use arcs_trace::Objective;

/// A configuration extended with an optional per-region frequency limit.
///
/// Alias kept for the DVFS extension's historical API; the type itself
/// lives in [`crate::tunable`].
pub type DvfsConfig = crate::tunable::TunedConfig;

/// The extended search space: the Table I grid plus a frequency axis.
///
/// Alias kept for the DVFS extension's historical API; the type itself
/// lives in [`crate::tunable`]. Build one with
/// [`TunableSpace::with_dvfs`].
pub type DvfsSpace = TunableSpace;

/// Result of tuning one region with the extended space.
#[derive(Debug, Clone)]
pub struct DvfsOutcome {
    pub config: DvfsConfig,
    pub report: SimReport,
    pub evaluations: usize,
}

/// Tune one region over `space` for `objective` using the mainline
/// session machinery.
///
/// The region is wrapped in a single-region workload and driven through
/// [`RegionTuner`] + [`Runner`] until the tuner converges (or a pass
/// budget runs out), so the search emits the standard trace/metrics
/// event taxonomy. The returned report re-simulates the winning
/// configuration in isolation (no search overhead folded in).
pub fn tune_region(
    machine: &Machine,
    cap_w: f64,
    region: &RegionModel,
    space: &TunableSpace,
    objective: Objective,
    mode: TuningMode,
) -> DvfsOutcome {
    let wl = WorkloadDescriptor {
        name: format!("tune.{}", region.name),
        step: vec![region.clone()],
        timesteps: 64,
    };
    let mut exec = SimExecutor::new(machine.clone(), cap_w);
    let mut tuner =
        RegionTuner::new(TunerOptions::new(space.clone(), mode).with_objective(objective));
    // Each pass is one simulated application run; the tuner keeps its
    // search state across passes. 64 passes × 64 timesteps comfortably
    // exhausts even the 4-knob grid.
    for _ in 0..64 {
        Runner::new(&mut exec)
            .workload(&wl)
            .tuner(&mut tuner)
            .run()
            .expect("single-region tuning run");
        if tuner.converged() {
            break;
        }
    }
    let evaluations = tuner.evaluations(&region.name);
    let config = tuner
        .best_tuned_configs()
        .remove(&region.name)
        .expect("tuned region has a best configuration");
    let report =
        simulate_region_at_freq(machine, cap_w, region, config.omp.as_sim(), config.freq_ghz);
    DvfsOutcome { config, report, evaluations }
}
