//! The per-region tuning brain.
//!
//! [`RegionTuner`] is backend-agnostic: both the live runtime adapter and
//! the simulator executor drive it through the same two calls —
//! [`begin`](RegionTuner::begin) when a region is about to fork (returns
//! the configuration to apply and whether that is a change), and
//! [`end_measured`](RegionTuner::end_measured) when the region's duration
//! and energy are known.
//!
//! Per the paper (§III-B): a tuning session is created lazily the first
//! time a region is encountered; while un-converged, each invocation runs
//! the next configuration the search requests; after convergence the
//! converged values are used. In replay mode (ARCS-Offline's measured
//! run), configurations come from the history file and no search happens.
//!
//! The tuner searches a [`TunableSpace`] — the paper's 3-knob grid or the
//! DVFS-extended 4-knob grid — and scores each invocation by its
//! [`Objective`]: `Time` reproduces the paper, `Energy`/`EnergyDelay`
//! optimise the same search machinery toward joules or the
//! energy-delay product.
//!
//! The *selective tuning* extension from the paper's future work ("enable
//! selective tuning for OpenMP regions to avoid overheads on the smaller
//! regions") is implemented as [`TunerOptions::min_region_time_s`]:
//! regions whose observed mean duration falls below the threshold are
//! pinned to the default configuration and excluded from tuning (and from
//! the per-invocation configuration-change overhead).

use crate::config::OmpConfig;
use crate::resilience::{median_and_mad, median_in_place, ResilienceOptions};
use crate::tunable::{TunableSpace, TunedConfig};
use arcs_harmony::{History, NmOptions, ProOptions, Session, StrategyKind};
use arcs_metrics::MetricsRegistry;
use arcs_powersim::FxBuildHasher;
use arcs_trace::{Objective, SearchCandidate, TraceEvent, TraceSink};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Accepted scores a region must hold before MAD rejection can fire —
/// below this the median/MAD are too unstable to call anything an
/// outlier, so the warmup measurements are always accepted.
const MIN_WINDOW_FOR_REJECTION: usize = 5;

/// How a tuner chooses configurations.
#[derive(Debug, Clone)]
pub enum TuningMode {
    /// Exhaustive sweep per region (the ARCS-Offline *training* run).
    OfflineTrain,
    /// Replay the best configurations saved by a training run (the
    /// ARCS-Offline *measured* run).
    OfflineReplay(History<OmpConfig>),
    /// Nelder–Mead search within the run (ARCS-Online).
    Online(NmOptions),
    /// Parallel Rank Order search within the run.
    OnlinePro(ProOptions),
    /// Uniform random sampling within the run (ablation baseline).
    OnlineRandom { seed: u64, max_evals: usize },
}

/// Tuner construction options.
#[derive(Debug, Clone)]
pub struct TunerOptions {
    pub space: TunableSpace,
    pub mode: TuningMode,
    /// What each invocation is scored by. `Time` is the paper's evaluated
    /// objective and the default.
    pub objective: Objective,
    /// Selective-tuning threshold (seconds of mean region time). 0 tunes
    /// everything — the paper's evaluated behaviour.
    pub min_region_time_s: f64,
}

impl TunerOptions {
    /// Options from any space representation ([`crate::config::ConfigSpace`]
    /// converts to the 3-knob [`TunableSpace`]).
    pub fn new(space: impl Into<TunableSpace>, mode: TuningMode) -> Self {
        TunerOptions {
            space: space.into(),
            mode,
            objective: Objective::Time,
            min_region_time_s: 0.0,
        }
    }

    pub fn online(space: impl Into<TunableSpace>) -> Self {
        TunerOptions::new(space, TuningMode::Online(NmOptions::default()))
    }

    pub fn offline_train(space: impl Into<TunableSpace>) -> Self {
        TunerOptions::new(space, TuningMode::OfflineTrain)
    }

    pub fn offline_replay(space: impl Into<TunableSpace>, history: History<OmpConfig>) -> Self {
        TunerOptions::new(space, TuningMode::OfflineReplay(history))
    }

    pub fn with_min_region_time(mut self, seconds: f64) -> Self {
        self.min_region_time_s = seconds;
        self
    }

    /// Score sessions by `objective` instead of wall-clock time.
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }
}

/// What `begin` tells the caller to do.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunerDecision {
    pub config: TunedConfig,
    /// Whether the configuration differs from the previously applied one.
    pub changed: bool,
    /// Whether ARCS actively manages this region. When true, the policy
    /// calls `omp_set_num_threads`/`omp_set_schedule` at *every* region
    /// entry (§III-C: the configuration-change overhead "is present in
    /// both Online and Offline strategies"). Regions excluded by selective
    /// tuning run untouched and pay nothing.
    pub tuned: bool,
}

/// Aggregate overhead/bookkeeping counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TunerStats {
    pub invocations: u64,
    pub config_changes: u64,
    pub regions: u64,
    pub skipped_regions: u64,
    /// Measurements discarded by MAD outlier rejection (absent — zero —
    /// in stats recorded before the resilience layer).
    #[serde(default)]
    pub rejected: u64,
    /// Search-session restarts triggered by rejection streaks.
    #[serde(default)]
    pub restarts: u64,
    /// Regions frozen to their best-known configuration (by the
    /// degradation ladder or by [`RegionTuner::freeze_all`]).
    #[serde(default)]
    pub frozen_regions: u64,
}

struct RegionState {
    session: Option<Session>,
    /// Configuration pinned by replay/selective-skip/freeze (None while
    /// searching).
    pinned: Option<TunedConfig>,
    /// Converged-session fast path: once the search settles, every
    /// invocation replays the same best point, so the decoded config is
    /// cached here instead of cloning/decoding it again per entry. Only
    /// set when the session is converged with no report outstanding
    /// (post-convergence `next_point` has no side effects), so serving
    /// from the cache is observationally identical.
    settled: Option<TunedConfig>,
    applied: Option<TunedConfig>,
    awaiting: bool,
    invocations: u64,
    total_time_s: f64,
    skipped: bool,
    /// Window of accepted scores (resilience only): what the MAD
    /// outlier test compares a new measurement against.
    accepted: VecDeque<f64>,
    /// Accepted scores for the *pending* search point (median-of-k
    /// re-measurement buffer; resilience only).
    pending_scores: Vec<f64>,
    /// The score the last rejection discarded: a re-measurement that
    /// reproduces it is accepted (consistent means real).
    last_rejected: Option<f64>,
    /// Rejections since the last session restart — the ladder's trigger
    /// for restarting and eventually freezing.
    rejections_since_restart: u32,
}

impl RegionState {
    fn searching(session: Option<Session>, pinned: Option<TunedConfig>) -> Self {
        RegionState {
            session,
            pinned,
            settled: None,
            applied: None,
            awaiting: false,
            invocations: 0,
            total_time_s: 0.0,
            skipped: false,
            accepted: VecDeque::new(),
            pending_scores: Vec::new(),
            last_rejected: None,
            rejections_since_restart: 0,
        }
    }
}

/// Pin `state` to its best-known configuration and emit
/// [`TraceEvent::TunerDegraded`]. Free function so callers holding
/// disjoint field borrows of [`RegionTuner`] can use it.
fn freeze_region(
    space: &TunableSpace,
    trace: &Option<Arc<dyn TraceSink>>,
    stats: &mut TunerStats,
    region: &str,
    state: &mut RegionState,
) {
    let cfg = state
        .session
        .as_ref()
        .map(|s| space.decode(&s.best_point()))
        .or(state.pinned)
        .unwrap_or_else(|| space.decode(&space.default_point()));
    state.pinned = Some(cfg);
    state.session = None;
    state.awaiting = false;
    state.pending_scores.clear();
    state.last_rejected = None;
    stats.frozen_regions += 1;
    if let Some(sink) = trace {
        if sink.enabled() {
            sink.record(
                None,
                TraceEvent::TunerDegraded {
                    region: region.to_owned(),
                    threads: cfg.omp.threads,
                    schedule: cfg.omp.schedule.to_string(),
                },
            );
        }
    }
}

/// Per-region adaptive configuration selection.
pub struct RegionTuner {
    options: TunerOptions,
    /// Decoded once at construction: `begin` needs it on every invocation
    /// and the space never changes after the tuner is built.
    default_cfg: TunedConfig,
    regions: HashMap<String, RegionState, FxBuildHasher>,
    /// The configuration currently held by the runtime's global ICVs.
    /// `omp_set_num_threads`/`omp_set_schedule` are process-global, so a
    /// region whose configuration differs from the *previously executed*
    /// region's pays the change cost on every entry — which is how the
    /// paper's per-region-invocation overhead arises (§III-C).
    last_applied: Option<TunedConfig>,
    stats: TunerStats,
    trace: Option<Arc<dyn TraceSink>>,
    metrics: Option<Arc<MetricsRegistry>>,
    /// Self-healing policy; `None` keeps the pre-resilience behaviour
    /// bit-for-bit (every measurement is accepted and reported).
    resilience: Option<ResilienceOptions>,
    /// Set by [`RegionTuner::freeze_all`] when the run's error budget
    /// was exhausted.
    degraded: bool,
}

impl RegionTuner {
    pub fn new(options: TunerOptions) -> Self {
        let default_cfg = options.space.decode(&options.space.default_point());
        RegionTuner {
            options,
            default_cfg,
            regions: HashMap::default(),
            last_applied: None,
            stats: TunerStats::default(),
            trace: None,
            metrics: None,
            resilience: None,
            degraded: false,
        }
    }

    /// Emit a [`TraceEvent::SearchIteration`] per search step. Only
    /// affects regions first encountered *after* the call (sessions are
    /// created lazily and observers bind at creation); the run drivers
    /// call this before the first invocation, so every region is covered.
    pub fn set_trace(&mut self, sink: Arc<dyn TraceSink>) {
        self.trace = Some(sink);
    }

    /// Builder-style [`RegionTuner::set_trace`].
    pub fn with_trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.set_trace(sink);
        self
    }

    /// Count search evaluations per strategy on `registry`
    /// (`harmony/evaluations/<strategy>`, cached replays included). Like
    /// [`RegionTuner::set_trace`], only sessions created after the call
    /// are counted — the run drivers attach before the first invocation.
    pub fn set_metrics(&mut self, registry: Arc<MetricsRegistry>) {
        self.metrics = Some(registry);
    }

    /// Builder-style [`RegionTuner::set_metrics`].
    pub fn with_metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.set_metrics(registry);
        self
    }

    /// Enable the self-healing ladder (outlier rejection, re-measurement,
    /// session restart, freezing) on every region encountered from now
    /// on. The run drivers call this before the first invocation.
    pub fn set_resilience(&mut self, options: ResilienceOptions) {
        self.resilience = Some(options);
    }

    /// Builder-style [`RegionTuner::set_resilience`].
    pub fn with_resilience(mut self, options: ResilienceOptions) -> Self {
        self.set_resilience(options);
        self
    }

    /// Freeze every region to its best-known configuration (graceful
    /// degradation: the measurement error budget is exhausted, so no
    /// further search decisions can be trusted). Idempotent.
    pub fn freeze_all(&mut self) {
        if self.degraded {
            return;
        }
        self.degraded = true;
        for (name, state) in self.regions.iter_mut() {
            if state.session.is_some() {
                freeze_region(&self.options.space, &self.trace, &mut self.stats, name, state);
            }
        }
        if let Some(registry) = &self.metrics {
            registry.counter("core/degraded").inc();
        }
    }

    /// Did [`RegionTuner::freeze_all`] fire?
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    pub fn stats(&self) -> TunerStats {
        self.stats
    }

    pub fn space(&self) -> &TunableSpace {
        &self.options.space
    }

    /// The objective sessions are scored by.
    pub fn objective(&self) -> Objective {
        self.options.objective
    }

    /// Change the scoring objective. Must be called before the first
    /// invocation: sessions already searching keep comparing values they
    /// scored under the previous objective.
    pub fn set_objective(&mut self, objective: Objective) {
        self.options.objective = objective;
    }

    /// Search evaluations spent on `region` so far (0 for pinned or
    /// unknown regions).
    pub fn evaluations(&self, region: &str) -> usize {
        self.regions
            .get(region)
            .and_then(|s| s.session.as_ref())
            .map(|s| s.evaluations())
            .unwrap_or(0)
    }

    fn default_config(&self) -> TunedConfig {
        self.default_cfg
    }

    /// Called at region fork. Returns the configuration to apply.
    pub fn begin(&mut self, region: &str) -> TunerDecision {
        self.stats.invocations += 1;
        let default_cfg = self.default_config();
        let threshold = self.options.min_region_time_s;

        if !self.regions.contains_key(region) {
            self.stats.regions += 1;
            let state = self.new_region_state(region);
            self.regions.insert(region.to_owned(), state);
        }
        let state = self.regions.get_mut(region).expect("just inserted");

        // Selective tuning: once a region has a few samples and its mean
        // time is below the threshold, pin it to the default configuration.
        if !state.skipped
            && threshold > 0.0
            && state.invocations >= 3
            && state.total_time_s / state.invocations as f64 + 1e-12 < threshold
        {
            state.skipped = true;
            state.session = None;
            state.pinned = Some(default_cfg);
            self.stats.skipped_regions += 1;
        }

        let config = if let Some(pinned) = state.pinned {
            pinned
        } else if let Some(settled) = state.settled {
            settled
        } else if let Some(session) = &mut state.session {
            let point = session.next_point();
            state.awaiting = session.awaiting_report();
            let cfg = self.options.space.decode(&point);
            if !state.awaiting && session.converged() {
                state.settled = Some(cfg);
            }
            cfg
        } else {
            default_cfg
        };

        state.applied = Some(config);
        let tuned = !state.skipped;
        // Compare against the *global* runtime state, not this region's
        // last configuration: the ICVs are process-wide.
        let changed = tuned && self.last_applied != Some(config);
        if changed {
            self.stats.config_changes += 1;
        }
        if tuned {
            self.last_applied = Some(config);
        }
        TunerDecision { config, changed, tuned }
    }

    /// Called at region join with the measured duration. Scores the
    /// session as if the invocation consumed no energy — exact for the
    /// `Time` objective; energy-aware callers use
    /// [`end_measured`](RegionTuner::end_measured).
    pub fn end(&mut self, region: &str, duration_s: f64) {
        self.end_measured(region, duration_s, 0.0);
    }

    /// Called at region join with the measured duration and the package
    /// energy attributed to the invocation. The session is scored by
    /// [`TunerOptions::objective`] over the pair.
    pub fn end_measured(&mut self, region: &str, time_s: f64, energy_j: f64) {
        let score = self.options.objective.score(time_s, energy_j);
        let Some(state) = self.regions.get_mut(region) else {
            return;
        };
        state.invocations += 1;
        state.total_time_s += time_s;
        if !state.awaiting || state.session.is_none() {
            state.awaiting = false;
            return;
        }
        state.awaiting = false;
        let Some(res) = self.resilience else {
            // Pre-resilience behaviour, bit for bit: every measurement
            // is reported.
            if let Some(session) = &mut state.session {
                session.report(score);
            }
            return;
        };

        // Rung 2 of the ladder: MAD outlier rejection. A rejected point
        // stays pending, so `begin` hands out the same configuration
        // again — except that a value which *reproduces* the one just
        // rejected is accepted: consistent across re-measurement means
        // the configuration really is that bad, not that a timer
        // glitched.
        if res.mad_threshold > 0.0 && state.accepted.len() >= MIN_WINDOW_FOR_REJECTION {
            let window: Vec<f64> = state.accepted.iter().copied().collect();
            let (median, mad) = median_and_mad(&window);
            let spread = (res.mad_threshold * mad).max(1e-3 * median.abs());
            let deviant = (score - median).abs() > spread;
            let confirmed = state
                .last_rejected
                .is_some_and(|r| (score - r).abs() <= 0.05 * r.abs().max(f64::MIN_POSITIVE));
            if deviant && !confirmed {
                state.last_rejected = Some(score);
                state.rejections_since_restart += 1;
                self.stats.rejected += 1;
                if let Some(sink) = &self.trace {
                    if sink.enabled() {
                        sink.record(
                            None,
                            TraceEvent::MeasurementRejected {
                                region: region.to_owned(),
                                value: score,
                                median,
                                mad,
                            },
                        );
                    }
                }
                if let Some(registry) = &self.metrics {
                    registry.counter("core/measurements_rejected").inc();
                }
                // Rungs 3–4: a rejection streak means the search is
                // poisoned — restart it at its best-known point, and
                // freeze the region once the restart budget is spent.
                if res.restart_after_rejections > 0
                    && state.rejections_since_restart >= res.restart_after_rejections
                {
                    state.rejections_since_restart = 0;
                    state.last_rejected = None;
                    state.pending_scores.clear();
                    let spent = state.session.as_ref().map(|s| s.restarts()).unwrap_or(0);
                    if spent < res.max_restarts {
                        if let Some(session) = &mut state.session {
                            session.restart();
                        }
                        self.stats.restarts += 1;
                    } else {
                        freeze_region(
                            &self.options.space,
                            &self.trace,
                            &mut self.stats,
                            region,
                            state,
                        );
                    }
                }
                return;
            }
        }

        state.last_rejected = None;
        if state.accepted.len() >= res.outlier_window.max(1) {
            state.accepted.pop_front();
        }
        state.accepted.push_back(score);
        if res.measure_k > 1 {
            // Median-of-k re-measurement: the point stays pending until
            // k accepted scores arrived; their median is what the
            // session learns.
            state.pending_scores.push(score);
            if state.pending_scores.len() >= res.measure_k {
                let median = median_in_place(&mut state.pending_scores);
                state.pending_scores.clear();
                if let Some(session) = &mut state.session {
                    session.report(median);
                }
            }
        } else if let Some(session) = &mut state.session {
            session.report(score);
        }
    }

    fn new_region_state(&self, region: &str) -> RegionState {
        let space = &self.options.space;
        if self.degraded {
            // A frozen tuner makes no new search decisions: regions
            // first seen after degradation run the default configuration.
            return RegionState::searching(None, Some(self.default_config()));
        }
        match &self.options.mode {
            TuningMode::OfflineReplay(history) => {
                // "The saved values can be used instead of repeating the
                // search process." Unknown regions fall back to default.
                // Histories store the paper's 3 knobs; replayed configs
                // run at the uncapped frequency.
                let pinned = history
                    .get(region)
                    .map(|e| TunedConfig { omp: e.config, freq_ghz: None })
                    .unwrap_or_else(|| self.default_config());
                RegionState::searching(None, Some(pinned))
            }
            mode => {
                let (strategy, label) = match mode {
                    TuningMode::OfflineTrain => (StrategyKind::exhaustive(), "exhaustive"),
                    TuningMode::Online(opts) => (StrategyKind::NelderMead(*opts), "nelder-mead"),
                    TuningMode::OnlinePro(opts) => (StrategyKind::ParallelRankOrder(*opts), "pro"),
                    TuningMode::OnlineRandom { seed, max_evals } => {
                        (StrategyKind::random(*seed, *max_evals), "random")
                    }
                    TuningMode::OfflineReplay(_) => unreachable!(),
                };
                let mut session =
                    Session::new(space.to_search_space(), strategy, space.default_point());
                if let Some(registry) = &self.metrics {
                    session = session.with_eval_counter(
                        registry.counter(&format!("harmony/evaluations/{label}")),
                    );
                }
                if let Some(sink) = &self.trace {
                    if sink.enabled() {
                        let sink = Arc::clone(sink);
                        let region_name = region.to_owned();
                        let objective = self.options.objective;
                        session = session.with_observer(move |step| {
                            sink.record(
                                None,
                                TraceEvent::SearchIteration {
                                    region: region_name.clone(),
                                    evaluations: step.evaluations as u64,
                                    point: step.point.clone(),
                                    value: step.value,
                                    best_point: step.best_point.clone(),
                                    best_value: step.best_value,
                                    converged: step.converged,
                                    simplex: step
                                        .candidates
                                        .iter()
                                        .map(|c| SearchCandidate {
                                            point: c.point.clone(),
                                            value: c.value,
                                        })
                                        .collect(),
                                    objective,
                                },
                            );
                        });
                    }
                }
                RegionState::searching(Some(session), None)
            }
        }
    }

    /// Are all (non-pinned) sessions converged? False until at least one
    /// region has been encountered (so callers can loop on `!converged()`
    /// from a cold start).
    pub fn converged(&self) -> bool {
        !self.regions.is_empty()
            && self.regions.values().all(|s| match &s.session {
                Some(session) => session.converged(),
                None => true,
            })
    }

    /// Has `region` converged (or is it pinned)?
    pub fn region_converged(&self, region: &str) -> bool {
        self.regions
            .get(region)
            .map(|s| s.session.as_ref().is_none_or(|sess| sess.converged()))
            .unwrap_or(false)
    }

    /// Best configuration found (or pinned) per region, across every knob.
    pub fn best_tuned_configs(&self) -> HashMap<String, TunedConfig> {
        self.regions
            .iter()
            .map(|(name, st)| {
                let cfg = st
                    .pinned
                    .or_else(|| {
                        st.session.as_ref().map(|s| self.options.space.decode(&s.best_point()))
                    })
                    .unwrap_or_else(|| self.default_config());
                (name.clone(), cfg)
            })
            .collect()
    }

    /// Best OpenMP triple found (or pinned) per region — the paper's view
    /// of [`best_tuned_configs`](RegionTuner::best_tuned_configs), with
    /// any frequency knob dropped.
    pub fn best_configs(&self) -> HashMap<String, OmpConfig> {
        self.best_tuned_configs().into_iter().map(|(name, cfg)| (name, cfg.omp)).collect()
    }

    /// Export the per-region best configurations as a history file (the
    /// paper: "when the program completes, the policy saves the best
    /// parameters found during the search"). Histories keep the on-disk
    /// 3-knob layout, so a frequency knob (if tuned) is not persisted.
    pub fn export_history(&self, context: impl Into<String>) -> History<OmpConfig> {
        let mut h = History::new(context);
        for (name, st) in &self.regions {
            if let Some(session) = &st.session {
                if let Some((point, value)) = session.best() {
                    h.insert(
                        name.clone(),
                        self.options.space.decode(&point).omp,
                        value,
                        session.evaluations(),
                    );
                }
            } else if let Some(pinned) = st.pinned {
                h.insert(name.clone(), pinned.omp, f64::NAN, 0);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConfigSpace;
    use arcs_omprt::Schedule;

    fn space() -> ConfigSpace {
        ConfigSpace::crill()
    }

    /// Synthetic objective: best at 16 threads + guided; default is slow.
    fn measure(cfg: &OmpConfig) -> f64 {
        let t_penalty = ((cfg.threads as f64).log2() - 4.0).abs() * 0.1;
        let s_penalty = match cfg.schedule.kind {
            arcs_omprt::ScheduleKind::Guided => 0.0,
            arcs_omprt::ScheduleKind::Dynamic => 0.05,
            arcs_omprt::ScheduleKind::Static => 0.15,
            // Self-scheduling families sit between dynamic and static in
            // this synthetic landscape; guided stays the optimum.
            _ => 0.10,
        };
        1.0 + t_penalty + s_penalty
    }

    fn drive(tuner: &mut RegionTuner, region: &str, n: usize) {
        for _ in 0..n {
            let d = tuner.begin(region);
            tuner.end(region, measure(&d.config.omp));
        }
    }

    #[test]
    fn offline_train_finds_the_optimum() {
        let mut tuner = RegionTuner::new(TunerOptions::offline_train(space()));
        drive(&mut tuner, "r", 300); // 252 configs + slack
        assert!(tuner.converged());
        let best = tuner.best_configs()["r"];
        assert_eq!(best.threads, 16);
        assert_eq!(best.schedule.kind, arcs_omprt::ScheduleKind::Guided);
    }

    #[test]
    fn online_converges_with_far_fewer_measurements() {
        let mut tuner = RegionTuner::new(TunerOptions::online(space()));
        let mut measured = 0;
        loop {
            let d = tuner.begin("r");
            measured += 1;
            tuner.end("r", measure(&d.config.omp));
            if tuner.converged() || measured >= 252 {
                break;
            }
        }
        assert!(tuner.converged(), "online should converge in < 252 runs");
        let best = tuner.best_configs()["r"];
        // Near-optimal: within one thread step and a non-static schedule.
        assert!(
            measure(&best) < measure(&OmpConfig::default_for(&arcs_powersim::Machine::crill()))
        );
    }

    #[test]
    fn energy_objective_minimises_energy_not_time() {
        // Synthetic region where more threads are always faster but the
        // energy sweet spot is 8 threads: time and energy argmins differ.
        // With power ∝ (8 + threads), energy = 2(8 + t)/√t has its
        // continuous minimum exactly at t = 8.
        let time_of = |cfg: &OmpConfig| 2.0 / (cfg.threads as f64).sqrt();
        let energy_of = |cfg: &OmpConfig| time_of(cfg) * (8.0 + cfg.threads as f64);

        let run = |objective: Objective| {
            let mut tuner =
                RegionTuner::new(TunerOptions::offline_train(space()).with_objective(objective));
            assert_eq!(tuner.objective(), objective);
            for _ in 0..300 {
                let d = tuner.begin("r");
                tuner.end_measured("r", time_of(&d.config.omp), energy_of(&d.config.omp));
            }
            assert!(tuner.converged());
            tuner.best_configs()["r"]
        };

        let by_time = run(Objective::Time);
        let by_energy = run(Objective::Energy);
        assert_eq!(by_time.threads, 32, "time objective wants max threads");
        assert_eq!(by_energy.threads, 8, "energy objective wants the sweet spot");
    }

    #[test]
    fn replay_pins_saved_configs_without_searching() {
        let mut h = History::new("test");
        let saved = OmpConfig { threads: 8, schedule: Schedule::dynamic(16) };
        h.insert("r", saved, 0.5, 252);
        let mut tuner = RegionTuner::new(TunerOptions::offline_replay(space(), h));
        for _ in 0..10 {
            let d = tuner.begin("r");
            assert_eq!(d.config.omp, saved);
            assert_eq!(d.config.freq_ghz, None);
            tuner.end("r", 0.5);
        }
        // Only the first invocation is a configuration change: the global
        // ICVs already hold the replayed value afterwards.
        assert_eq!(tuner.stats().config_changes, 1);
        assert!(tuner.converged());
        assert_eq!(tuner.evaluations("r"), 0);
    }

    #[test]
    fn replay_of_unknown_region_uses_default() {
        let h = History::new("empty");
        let mut tuner = RegionTuner::new(TunerOptions::offline_replay(space(), h));
        let d = tuner.begin("mystery");
        assert_eq!(d.config.omp, OmpConfig::default_for(&arcs_powersim::Machine::crill()));
    }

    #[test]
    fn config_changes_counted_only_on_change() {
        let mut tuner = RegionTuner::new(TunerOptions::offline_train(space()));
        // During an exhaustive sweep nearly every invocation changes config.
        drive(&mut tuner, "r", 20);
        let st = tuner.stats();
        assert!(st.config_changes > 15);
        assert_eq!(st.invocations, 20);
    }

    #[test]
    fn selective_tuning_skips_tiny_regions() {
        let opts = TunerOptions::online(space()).with_min_region_time(0.05);
        let mut tuner = RegionTuner::new(opts);
        for _ in 0..20 {
            let _ = tuner.begin("tiny");
            tuner.end("tiny", 0.001); // far below the threshold
        }
        assert_eq!(tuner.stats().skipped_regions, 1);
        // After skipping, the config is pinned to default: no more changes.
        let before = tuner.stats().config_changes;
        for _ in 0..10 {
            let d = tuner.begin("tiny");
            assert_eq!(d.config.omp, tuner.best_configs()["tiny"]);
            tuner.end("tiny", 0.001);
        }
        assert_eq!(tuner.stats().config_changes, before);
    }

    #[test]
    fn big_regions_survive_selective_tuning() {
        let opts = TunerOptions::online(space()).with_min_region_time(0.05);
        let mut tuner = RegionTuner::new(opts);
        for _ in 0..30 {
            let d = tuner.begin("big");
            tuner.end("big", measure(&d.config.omp)); // ~1s, above threshold
        }
        assert_eq!(tuner.stats().skipped_regions, 0);
    }

    #[test]
    fn history_roundtrip_through_json() {
        let mut tuner = RegionTuner::new(TunerOptions::offline_train(space()));
        drive(&mut tuner, "a", 300);
        drive(&mut tuner, "b", 300);
        let h = tuner.export_history("app.B.crill.115W");
        assert_eq!(h.len(), 2);
        let json = h.to_json();
        let back: History<OmpConfig> = History::from_json(&json).unwrap();
        assert_eq!(h, back);
        assert_eq!(back.context, "app.B.crill.115W");
    }

    #[test]
    fn traced_tuner_reports_search_iterations() {
        use arcs_trace::{TraceEvent, VecSink};
        use std::sync::Arc;

        let sink = Arc::new(VecSink::new());
        let mut tuner = RegionTuner::new(TunerOptions::online(space())).with_trace(sink.clone());
        drive(&mut tuner, "r", 40);
        let records = sink.drain();
        assert!(!records.is_empty(), "search steps must reach the sink");
        let mut last_evals = 0;
        for r in &records {
            let TraceEvent::SearchIteration {
                region,
                evaluations,
                best_value,
                value,
                objective,
                ..
            } = &r.event
            else {
                panic!("unexpected event {:?}", r.event);
            };
            assert_eq!(region, "r");
            assert_eq!(*objective, Objective::Time);
            assert!(*evaluations > last_evals);
            last_evals = *evaluations;
            assert!(best_value <= value);
        }
    }

    #[test]
    fn metrics_count_one_evaluation_per_search_step() {
        use arcs_trace::VecSink;
        use std::sync::Arc;

        let registry = Arc::new(MetricsRegistry::new());
        let sink = Arc::new(VecSink::new());
        let mut tuner = RegionTuner::new(TunerOptions::online(space()))
            .with_trace(sink.clone())
            .with_metrics(Arc::clone(&registry));
        drive(&mut tuner, "r", 40);
        // Both channels fire once per strategy `tell` (cached replays
        // included), so the counter must equal the SearchIteration count.
        let evals = registry.snapshot().counter("harmony/evaluations/nelder-mead");
        assert!(evals > 0);
        assert_eq!(evals, sink.drain().len() as u64);
    }

    #[test]
    fn multiple_regions_tune_independently() {
        let mut tuner = RegionTuner::new(TunerOptions::offline_train(space()));
        drive(&mut tuner, "a", 10);
        drive(&mut tuner, "b", 10);
        assert_eq!(tuner.stats().regions, 2);
        assert!(!tuner.converged());
    }
}

#[cfg(test)]
mod resilience_tests {
    use super::*;
    use crate::config::ConfigSpace;
    use crate::resilience::ResilienceOptions;
    use arcs_trace::VecSink;

    fn space() -> ConfigSpace {
        ConfigSpace::crill()
    }

    fn measure(cfg: &OmpConfig) -> f64 {
        let t_penalty = ((cfg.threads as f64).log2() - 4.0).abs() * 0.1;
        1.0 + t_penalty
    }

    #[test]
    fn spiked_measurements_are_rejected_and_remeasured() {
        let sink = Arc::new(VecSink::new());
        // Exhaustive mode keeps the session awaiting for every
        // invocation, so the spike is guaranteed to hit a live search.
        let mut tuner = RegionTuner::new(TunerOptions::offline_train(space()))
            .with_resilience(ResilienceOptions::standard())
            .with_trace(sink.clone());
        // Warm the accepted window with consistent scores, inject one
        // 10× timer spike, then return to clean measurements.
        let mut spiked_config = None;
        for i in 0..16 {
            let d = tuner.begin("r");
            let v = if i == 10 {
                spiked_config = Some(d.config);
                10.0
            } else {
                1.0
            };
            tuner.end("r", v);
        }
        assert_eq!(tuner.stats().rejected, 1, "exactly the spike is rejected");
        let rejected: Vec<_> = sink
            .drain()
            .into_iter()
            .filter_map(|r| match r.event {
                TraceEvent::MeasurementRejected { value, median, .. } => Some((value, median)),
                _ => None,
            })
            .collect();
        assert_eq!(rejected, vec![(10.0, 1.0)]);
        // The spiked point was re-measured, not skipped: invocation 11
        // handed out the same configuration again, whose clean score was
        // then accepted (16 invocations still report 15 evaluations).
        assert!(spiked_config.is_some());
        assert_eq!(tuner.evaluations("r"), 15);
    }

    #[test]
    fn reproducible_bad_scores_are_accepted_not_rejected_forever() {
        // A configuration that really is 10× worse keeps returning the
        // same score: the first measurement is rejected, the identical
        // re-measurement is accepted (consistent means real).
        let res = ResilienceOptions { mad_threshold: 3.0, ..ResilienceOptions::standard() };
        let mut tuner = RegionTuner::new(TunerOptions::online(space())).with_resilience(res);
        for _ in 0..60 {
            let d = tuner.begin("r");
            let v = if d.config.omp.threads == 1 { 12.0 } else { measure(&d.config.omp) };
            tuner.end("r", v);
        }
        // The search made progress despite the pathological corner: it
        // converged or is still measuring, but never wedged on one point.
        assert!(tuner.stats().rejected < 30, "rejections must not dominate the run");
        assert!(tuner.evaluations("r") > 5, "the session kept learning");
    }

    #[test]
    fn median_of_k_reports_once_per_k_measurements() {
        let res =
            ResilienceOptions { measure_k: 3, mad_threshold: 0.0, ..ResilienceOptions::default() };
        let mut tuner = RegionTuner::new(TunerOptions::online(space())).with_resilience(res);
        let mut points = Vec::new();
        for _ in 0..9 {
            let d = tuner.begin("r");
            points.push(d.config);
            tuner.end("r", measure(&d.config.omp));
        }
        // Each search point is held for 3 invocations.
        assert_eq!(points[0], points[1]);
        assert_eq!(points[1], points[2]);
        assert_eq!(points[3], points[4]);
        assert_eq!(tuner.evaluations("r"), 3, "9 invocations = 3 reported evaluations");
    }

    #[test]
    fn rejection_streak_restarts_then_freezes() {
        let res = ResilienceOptions {
            mad_threshold: 2.0,
            restart_after_rejections: 3,
            max_restarts: 1,
            ..ResilienceOptions::standard()
        };
        let sink = Arc::new(VecSink::new());
        let mut tuner = RegionTuner::new(TunerOptions::offline_train(space()))
            .with_resilience(res)
            .with_trace(sink.clone());
        // Warm the window with consistent scores, then feed garbage that
        // never reproduces (a fresh random-looking value each time).
        for _ in 0..8 {
            let _ = tuner.begin("r");
            tuner.end("r", 1.0);
        }
        let mut v = 50.0;
        for _ in 0..20 {
            let _ = tuner.begin("r");
            tuner.end("r", v);
            v = v * 1.37 + 3.0; // never within 5% of the last rejection
        }
        let st = tuner.stats();
        assert!(st.restarts >= 1, "streak must restart the session: {st:?}");
        assert_eq!(st.frozen_regions, 1, "then freeze the region: {st:?}");
        assert!(tuner.region_converged("r"), "frozen regions count as converged");
        let degraded: Vec<_> = sink
            .drain()
            .into_iter()
            .filter(|r| matches!(r.event, TraceEvent::TunerDegraded { .. }))
            .collect();
        assert_eq!(degraded.len(), 1);
    }

    #[test]
    fn freeze_all_pins_every_region_and_marks_degraded() {
        let sink = Arc::new(VecSink::new());
        let mut tuner = RegionTuner::new(TunerOptions::online(space()))
            .with_resilience(ResilienceOptions::standard())
            .with_trace(sink.clone());
        for _ in 0..10 {
            for r in ["a", "b"] {
                let d = tuner.begin(r);
                tuner.end(r, measure(&d.config.omp));
            }
        }
        assert!(!tuner.degraded());
        tuner.freeze_all();
        tuner.freeze_all(); // idempotent
        assert!(tuner.degraded());
        assert!(tuner.converged(), "a frozen tuner is converged");
        assert_eq!(tuner.stats().frozen_regions, 2);
        let degraded = sink
            .drain()
            .into_iter()
            .filter(|r| matches!(r.event, TraceEvent::TunerDegraded { .. }))
            .count();
        assert_eq!(degraded, 2);
        // Frozen regions keep serving their pinned config; new regions
        // run the default.
        let before = tuner.best_configs()["a"];
        let d = tuner.begin("a");
        assert_eq!(d.config.omp, before);
        let fresh = tuner.begin("new-after-freeze");
        assert_eq!(fresh.config.omp, OmpConfig::default_for(&arcs_powersim::Machine::crill()));
    }

    #[test]
    fn resilience_off_is_bit_identical_to_the_old_path() {
        let run = |resilient: bool| {
            let mut tuner = RegionTuner::new(TunerOptions::online(space()));
            if resilient {
                // All-off options: every rung disabled.
                tuner.set_resilience(ResilienceOptions::default());
            }
            for _ in 0..60 {
                let d = tuner.begin("r");
                tuner.end("r", measure(&d.config.omp));
            }
            (tuner.best_configs()["r"], tuner.evaluations("r"))
        };
        assert_eq!(run(false), run(true));
    }
}
