//! TAU-style OMPT profiler.
//!
//! The paper's Fig. 9 analysis uses TAU to break each region's inclusive
//! time into `OpenMP_IMPLICIT_TASK` / `OpenMP_LOOP` / `OpenMP_BARRIER`.
//! [`OmptProfiler`] is the live-path equivalent: an OMPT tool that
//! aggregates exactly that breakdown from the per-thread records the runtime
//! emits at every join point. Attach it alongside (or without) ARCS:
//!
//! ```
//! use arcs::profiler::OmptProfiler;
//! use arcs_omprt::Runtime;
//! use std::sync::Arc;
//!
//! let rt = Runtime::new(2);
//! let profiler = OmptProfiler::attach(&rt);
//! let region = rt.register_region("hot");
//! rt.parallel_for(region, 0..128, |_| {});
//! let rows = profiler.report();
//! assert_eq!(rows[0].invocations, 1);
//! assert!(rows[0].implicit_task_s >= rows[0].loop_s);
//! ```

use arcs_omprt::{RegionId, RegionRecord, Runtime, Tool};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Aggregated OMPT event times for one region.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RegionProfile {
    pub region: String,
    pub invocations: u64,
    /// Σ per-thread (busy + barrier) — the OMPT `OpenMP_IMPLICIT_TASK` sum.
    pub implicit_task_s: f64,
    /// Σ per-thread loop-body time — `OpenMP_LOOP`.
    pub loop_s: f64,
    /// Σ per-thread barrier wait — `OpenMP_BARRIER`.
    pub barrier_s: f64,
    /// Σ wall-clock region durations (per-call mean = this / invocations).
    pub wall_s: f64,
}

impl RegionProfile {
    /// Fraction of the inclusive time spent waiting at barriers — the
    /// paper's load-balance indicator.
    pub fn barrier_fraction(&self) -> f64 {
        if self.implicit_task_s > 0.0 {
            self.barrier_s / self.implicit_task_s
        } else {
            0.0
        }
    }

    pub fn mean_call_s(&self) -> f64 {
        if self.invocations > 0 {
            self.wall_s / self.invocations as f64
        } else {
            0.0
        }
    }
}

#[derive(Default)]
struct State {
    by_region: HashMap<RegionId, RegionProfile>,
}

/// The profiler tool. Create with [`OmptProfiler::attach`].
pub struct OmptProfiler {
    state: Mutex<State>,
}

struct Adapter {
    profiler: Arc<OmptProfiler>,
}

impl OmptProfiler {
    /// Attach a profiler to `rt`'s tool chain and return a handle for
    /// reading reports. The tool only sees region *ids*; names resolve at
    /// report time through the runtime handle the caller holds.
    pub fn attach(rt: &Runtime) -> Arc<OmptProfiler> {
        let profiler = Arc::new(OmptProfiler { state: Mutex::new(State::default()) });
        rt.tools().register(Arc::new(Adapter { profiler: Arc::clone(&profiler) }));
        profiler
    }

    fn record(&self, region: RegionId, rec: &RegionRecord) {
        let mut st = self.state.lock();
        let p = st.by_region.entry(region).or_default();
        p.invocations += 1;
        p.wall_s += rec.duration.as_secs_f64();
        for t in &rec.per_thread {
            let busy = t.busy.as_secs_f64();
            let wait = t.barrier_wait.as_secs_f64();
            p.loop_s += busy;
            p.barrier_s += wait;
            p.implicit_task_s += busy + wait;
        }
    }

    /// Profiles sorted by region name, so report output is deterministic
    /// across runs (inclusive times of a live run never repeat exactly).
    /// Region names are resolved through `rt`.
    pub fn report_named(&self, rt: &Runtime) -> Vec<RegionProfile> {
        let st = self.state.lock();
        let mut rows: Vec<RegionProfile> = st
            .by_region
            .iter()
            .map(|(id, p)| RegionProfile { region: rt.region_name(*id), ..p.clone() })
            .collect();
        rows.sort_by(|a, b| a.region.cmp(&b.region));
        rows
    }

    /// Profiles with numeric region labels (no runtime handle needed),
    /// sorted by label.
    pub fn report(&self) -> Vec<RegionProfile> {
        let st = self.state.lock();
        let mut rows: Vec<RegionProfile> = st
            .by_region
            .iter()
            .map(|(id, p)| RegionProfile { region: id.to_string(), ..p.clone() })
            .collect();
        rows.sort_by(|a, b| a.region.cmp(&b.region));
        rows
    }

    /// Drop all accumulated data (between experiment phases).
    pub fn reset(&self) {
        self.state.lock().by_region.clear();
    }
}

impl Tool for Adapter {
    fn parallel_end(&self, region: RegionId, record: &RegionRecord) {
        self.profiler.record(region, record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arcs_omprt::Schedule;

    #[test]
    fn aggregates_event_breakdown() {
        let rt = Runtime::new(4);
        let profiler = OmptProfiler::attach(&rt);
        let fast = rt.register_region("fast");
        let slow = rt.register_region("slow");
        rt.set_schedule(Schedule::static_block());
        for _ in 0..5 {
            rt.parallel_for(fast, 0..64, |_| {});
            rt.parallel_for(slow, 0..64, |i| {
                if i < 16 {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
            });
        }
        let rows = profiler.report_named(&rt);
        assert_eq!(rows.len(), 2);
        // Rows come back sorted by region name (deterministic output).
        assert_eq!(rows[0].region, "fast");
        assert_eq!(rows[1].region, "slow");
        // The imbalanced region dominates inclusive time and shows barrier
        // waits (threads without the slow block finish early).
        let slow = &rows[1];
        assert!(slow.implicit_task_s >= rows[0].implicit_task_s);
        assert_eq!(slow.invocations, 5);
        assert!(slow.barrier_s > 0.0);
        assert!(slow.barrier_fraction() > 0.0 && slow.barrier_fraction() < 1.0);
        for r in &rows {
            assert!(r.implicit_task_s + 1e-12 >= r.loop_s + r.barrier_s - 1e-9);
            assert!(r.mean_call_s() > 0.0);
        }
    }

    #[test]
    fn reset_clears_state() {
        let rt = Runtime::new(2);
        let profiler = OmptProfiler::attach(&rt);
        let region = rt.register_region("r");
        rt.parallel_for(region, 0..8, |_| {});
        assert_eq!(profiler.report().len(), 1);
        profiler.reset();
        assert!(profiler.report().is_empty());
    }

    #[test]
    fn coexists_with_live_arcs() {
        use crate::{ArcsLive, ConfigSpace, TunerOptions};
        use std::sync::Arc as StdArc;
        let rt = StdArc::new(Runtime::new(2));
        let profiler = OmptProfiler::attach(&rt);
        let space = ConfigSpace {
            threads: vec![crate::ThreadChoice::Count(1), crate::ThreadChoice::Default],
            schedules: vec![crate::ScheduleChoice::Default],
            chunks: vec![crate::ChunkChoice::Default],
            default_threads: 2,
        };
        let _live = ArcsLive::attach(StdArc::clone(&rt), TunerOptions::online(space));
        let region = rt.register_region("both");
        for _ in 0..10 {
            rt.parallel_for(region, 0..32, |_| {});
        }
        let rows = profiler.report_named(&rt);
        assert_eq!(rows[0].invocations, 10);
    }
}
