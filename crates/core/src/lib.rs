//! # arcs — Adaptive Runtime Configuration Selection
//!
//! Reproduction of *"ARCS: Adaptive Runtime Configuration Selection for
//! Power-Constrained OpenMP Applications"* (Shahneous Bari et al., IEEE
//! CLUSTER 2016): a framework that automatically selects, per parallel
//! region, the best **number of threads**, **scheduling policy** and
//! **chunk size** for a given package power cap.
//!
//! Two strategies, as in the paper:
//!
//! * **ARCS-Offline** — an exhaustive training execution per power
//!   cap/workload saves the best configuration per region to a history
//!   file; the measured execution replays it
//!   ([`executor::runs::offline_run`]).
//! * **ARCS-Online** — Nelder–Mead search converges within the same run
//!   ([`executor::runs::online_run`]).
//!
//! Two backends behind one [`backend::Backend`] trait and one run driver:
//!
//! * [`executor::SimExecutor`] drives the deterministic power-capped
//!   machine simulator (`arcs-powersim`), which is where the paper's
//!   power-sweep experiments run (RAPL capping is simulated; see
//!   DESIGN.md);
//! * [`live::LiveExecutor`] runs region models as calibrated spin loops on
//!   a real [`arcs_omprt::Runtime`] — and [`live::ArcsLive`] attaches ARCS
//!   to any runtime through the OMPT-like tool interface and APEX policies
//!   (the paper's Fig. 2 wiring, adapting real executions).
//!
//! Whole experiment grids (workload × power cap × strategy) run through
//! the [`sweep::SweepEngine`], which executes cells concurrently over a
//! shared per-machine simulation memo cache.
//!
//! ## Quickstart (simulator)
//! ```
//! use arcs::executor::runs;
//! use arcs_powersim::Machine;
//! use arcs_kernels::{model, Class};
//!
//! let machine = Machine::crill();
//! let mut workload = model::sp(Class::B);
//! workload.timesteps = 10;
//!
//! let base = runs::default_run(&machine, 85.0, &workload);
//! let (tuned, history) = runs::offline_run(&machine, 85.0, &workload);
//! assert!(tuned.time_s < base.time_s);
//! assert_eq!(history.len(), 5); // one best config per SP region
//! ```

pub mod backend;
pub mod cap;
pub mod config;
pub mod dvfs;
pub mod executor;
pub mod faults;
pub mod live;
pub mod profiler;
pub mod report;
pub mod resilience;
pub mod sweep;
pub mod tunable;
pub mod tuner;

pub use backend::{
    overhead_power_w, Backend, Measurement, RegionFeatures, RegionRun, RunError, Runner,
    RunnerStrategy,
};
pub use cap::{CapHandle, CapWatch};
pub use config::{ChunkChoice, ConfigSpace, OmpConfig, ScheduleChoice, ThreadChoice};
pub use dvfs::{DvfsConfig, DvfsOutcome, DvfsSpace};
pub use executor::{runs, NoiseModel, SimExecutor};
pub use faults::{FaultClock, MeterFault};
pub use live::{ArcsLive, LiveExecutor};
pub use profiler::{OmptProfiler, RegionProfile};
pub use report::{AppRunReport, FaultRecovery, RegionSummary, RunStatus};
pub use resilience::ResilienceOptions;
pub use sweep::{CellResult, SweepEngine, SweepGrid, SweepReport, SweepStrategy};
pub use tunable::{TunableSpace, TunedConfig};
pub use tuner::{RegionTuner, TunerDecision, TunerOptions, TunerStats, TuningMode};

/// The scalar a run is scored by (time, energy, or EDP). Defined in
/// `arcs-trace` so trace events can carry it; re-exported here as the
/// canonical user-facing name.
pub use arcs_trace::Objective;

/// One-import surface for the common simulator workflow.
///
/// ```
/// use arcs::prelude::*;
/// # use arcs_kernels::{model, Class};
/// let mut wl = model::sp(Class::B);
/// wl.timesteps = 3;
/// let mut exec = SimExecutor::new(Machine::crill(), 85.0);
/// let report = Runner::new(&mut exec).workload(&wl).run().unwrap();
/// assert!(report.time_s > 0.0);
/// ```
pub mod prelude {
    pub use crate::backend::{Backend, RunError, Runner, RunnerStrategy};
    pub use crate::cap::CapHandle;
    pub use crate::config::{ConfigSpace, OmpConfig};
    pub use crate::executor::{runs, SimExecutor};
    pub use crate::report::{AppRunReport, FaultRecovery, RunStatus};
    pub use crate::resilience::ResilienceOptions;
    pub use crate::sweep::{SweepEngine, SweepGrid, SweepStrategy};
    pub use crate::tunable::{TunableSpace, TunedConfig};
    pub use crate::tuner::{RegionTuner, TunerOptions};
    pub use arcs_powersim::{FaultPlan, Machine, SharedSimCache, WorkloadDescriptor};
    pub use arcs_trace::{
        chrome_trace, JsonlSink, NullSink, Objective, TraceEvent, TraceRecord, TraceSink, VecSink,
    };
}
