//! # arcs — Adaptive Runtime Configuration Selection
//!
//! Reproduction of *"ARCS: Adaptive Runtime Configuration Selection for
//! Power-Constrained OpenMP Applications"* (Shahneous Bari et al., IEEE
//! CLUSTER 2016): a framework that automatically selects, per parallel
//! region, the best **number of threads**, **scheduling policy** and
//! **chunk size** for a given package power cap.
//!
//! Two strategies, as in the paper:
//!
//! * **ARCS-Offline** — an exhaustive training execution per power
//!   cap/workload saves the best configuration per region to a history
//!   file; the measured execution replays it
//!   ([`executor::runs::offline_run`]).
//! * **ARCS-Online** — Nelder–Mead search converges within the same run
//!   ([`executor::runs::online_run`]).
//!
//! Two backends:
//!
//! * [`live::ArcsLive`] attaches to a real [`arcs_omprt::Runtime`] through
//!   the OMPT-like tool interface and APEX policies — the paper's Fig. 2
//!   wiring, adapting real executions;
//! * [`executor::SimExecutor`] drives the deterministic power-capped
//!   machine simulator (`arcs-powersim`), which is where the paper's
//!   power-sweep experiments run (RAPL capping is simulated; see
//!   DESIGN.md).
//!
//! ## Quickstart (simulator)
//! ```
//! use arcs::executor::runs;
//! use arcs_powersim::Machine;
//! use arcs_kernels::{model, Class};
//!
//! let machine = Machine::crill();
//! let mut workload = model::sp(Class::B);
//! workload.timesteps = 10;
//!
//! let base = runs::default_run(&machine, 85.0, &workload);
//! let (tuned, history) = runs::offline_run(&machine, 85.0, &workload);
//! assert!(tuned.time_s < base.time_s);
//! assert_eq!(history.len(), 5); // one best config per SP region
//! ```

pub mod config;
pub mod dvfs;
pub mod executor;
pub mod live;
pub mod profiler;
pub mod report;
pub mod tuner;

pub use config::{ChunkChoice, ConfigSpace, OmpConfig, ScheduleChoice, ThreadChoice};
pub use executor::{runs, SimExecutor};
pub use dvfs::{DvfsConfig, DvfsOutcome, DvfsSpace, Objective};
pub use live::ArcsLive;
pub use profiler::{OmptProfiler, RegionProfile};
pub use report::{AppRunReport, RegionSummary};
pub use tuner::{RegionTuner, TunerDecision, TunerOptions, TunerStats, TuningMode};
