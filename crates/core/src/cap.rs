//! The watchable power-cap handle: an externally-owned cap a run observes
//! mid-flight.
//!
//! The paper's runs hold one cap for their whole duration, so PR 1–4
//! treated the cap as a per-run constant baked into the backend at
//! construction. Two things broke that assumption: PR 5's fault plans
//! reprogram the cap *inside* a run (the `cap_change` fault class), and
//! the `arcs-serve` broker moves caps between concurrently running jobs
//! whenever tenancy changes. [`CapHandle`] promotes the cap to a shared,
//! watchable cell: the owner (a broker, a test harness, an operator CLI)
//! calls [`CapHandle::set`], and every backend holding the handle applies
//! the new value at its next region boundary — through exactly the same
//! clamp-and-trace path a scheduled cap fault uses, so to the tuner a
//! reallocation is indistinguishable from a mid-run `CapChange` it
//! already adapts to.
//!
//! Semantics:
//!
//! * **Boundary application.** Backends poll the handle immediately
//!   before each region invocation (never mid-invocation), so the
//!   simulation — and the memo-cache key — always see a single coherent
//!   envelope per invocation.
//! * **Last-writer-wins.** Rapid successive `set`s coalesce; a backend
//!   that polls after N writes applies only the final value. The version
//!   counter makes "did anything change?" one relaxed atomic load on the
//!   hot path.
//! * **Requested, not effective.** The handle carries the *requested*
//!   watts; each backend clamps to its own RAPL range and reports the
//!   effective value in its `CapChange` trace event, exactly like a
//!   constructor-supplied cap.
//! * **No handle, no cost.** Backends without a handle skip one `Option`
//!   check; unfaulted, un-brokered runs stay bit-identical to PR 5.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Debug)]
struct CapCell {
    /// Requested cap in watts, stored as `f64::to_bits`.
    bits: AtomicU64,
    /// Bumped on every `set`; lets watchers detect changes cheaply.
    version: AtomicU64,
}

/// A shared, watchable power cap. Clone freely — clones observe the same
/// cell. See the module docs for the application semantics.
#[derive(Debug, Clone)]
pub struct CapHandle {
    cell: Arc<CapCell>,
}

impl CapHandle {
    /// A handle initially requesting `watts`. Version starts at 0; a
    /// watcher primed with [`CapHandle::version`] at attach time will not
    /// see the initial value as a change.
    pub fn new(watts: f64) -> Self {
        CapHandle {
            cell: Arc::new(CapCell {
                bits: AtomicU64::new(watts.to_bits()),
                version: AtomicU64::new(0),
            }),
        }
    }

    /// Request a new cap. Takes effect in each watching backend at its
    /// next region boundary.
    pub fn set(&self, watts: f64) {
        self.cell.bits.store(watts.to_bits(), Ordering::Release);
        self.cell.version.fetch_add(1, Ordering::Release);
    }

    /// The currently requested cap in watts.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.cell.bits.load(Ordering::Acquire))
    }

    /// Monotone change counter; differs from a previously observed value
    /// iff `set` ran in between.
    pub fn version(&self) -> u64 {
        self.cell.version.load(Ordering::Acquire)
    }

    /// Two handles watch the same cell.
    pub fn same_cell(&self, other: &CapHandle) -> bool {
        Arc::ptr_eq(&self.cell, &other.cell)
    }
}

/// A backend's view of an attached [`CapHandle`]: the handle plus the
/// last version it applied, so polling is one load + one compare.
#[derive(Debug, Clone)]
pub struct CapWatch {
    handle: CapHandle,
    seen: u64,
}

impl CapWatch {
    /// Watch `handle`, treating its current value as already applied
    /// (the backend seeds its cap from the handle at attach time).
    pub fn new(handle: CapHandle) -> Self {
        let seen = handle.version();
        CapWatch { handle, seen }
    }

    /// If the handle moved since the last poll, return the newly
    /// requested watts (coalescing intermediate writes) and mark it seen.
    pub fn poll(&mut self) -> Option<f64> {
        let v = self.handle.version();
        if v == self.seen {
            return None;
        }
        self.seen = v;
        Some(self.handle.get())
    }

    /// The watched handle.
    pub fn handle(&self) -> &CapHandle {
        &self.handle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_is_visible_through_clones() {
        let h = CapHandle::new(80.0);
        let h2 = h.clone();
        h.set(65.0);
        assert_eq!(h2.get(), 65.0);
        assert!(h.same_cell(&h2));
        assert!(!h.same_cell(&CapHandle::new(65.0)));
    }

    #[test]
    fn watch_sees_each_change_once_and_coalesces_bursts() {
        let h = CapHandle::new(80.0);
        let mut w = CapWatch::new(h.clone());
        assert_eq!(w.poll(), None, "the initial value is not a change");
        h.set(70.0);
        h.set(60.0);
        h.set(55.0);
        assert_eq!(w.poll(), Some(55.0), "bursts coalesce to the last write");
        assert_eq!(w.poll(), None, "a seen version does not re-fire");
        h.set(90.0);
        assert_eq!(w.poll(), Some(90.0));
    }

    #[test]
    fn concurrent_setters_leave_a_consistent_final_value() {
        let h = CapHandle::new(50.0);
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..250 {
                        h.set(40.0 + (t * 250 + i) as f64 * 0.01);
                    }
                });
            }
        });
        assert_eq!(h.version(), 1000);
        let v = h.get();
        assert!((40.0..=52.5).contains(&v), "final value is one of the writes: {v}");
    }
}
