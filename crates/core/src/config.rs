//! OpenMP runtime configurations and the ARCS search space (Table I).
//!
//! A configuration is the paper's triple: **number of threads**,
//! **scheduling policy**, **chunk size**. The search space is the reduced
//! grid of Table I; "default" entries map to the runtime defaults (all
//! hardware threads / `static` / block chunking).
//!
//! Garbled-source note: the paper's Table I lost the characters `0` and
//! `1` in transcription. The values below reconstruct it under that
//! pattern: Crill threads {2,4,8,**16**,24,32,default}, Minotaur threads
//! {**20,40,80,120,160**,default}, chunks {**1**,8,**16**,32,64,**128**,
//! 256,**512**,default} — flagged in EXPERIMENTS.md.

use arcs_harmony::{Param, Point, SearchSpace};
use arcs_omprt::{Schedule, ScheduleKind};
use arcs_powersim::{Machine, SimConfig};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One concrete runtime configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OmpConfig {
    pub threads: usize,
    pub schedule: Schedule,
}

impl OmpConfig {
    /// The paper's baseline: "maximum number of available threads, static
    /// scheduling, and chunk sizes calculated dynamically by dividing total
    /// number of loop iterations by number of threads".
    pub fn default_for(machine: &Machine) -> Self {
        OmpConfig { threads: machine.hw_threads(), schedule: Schedule::static_block() }
    }

    pub fn as_sim(&self) -> SimConfig {
        SimConfig { threads: self.threads, schedule: self.schedule }
    }
}

impl fmt::Display for OmpConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}, {}", self.threads, self.schedule)
    }
}

/// A thread-count choice: explicit or the runtime default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThreadChoice {
    Count(usize),
    Default,
}

/// A schedule-kind choice, `Default` meaning the implementation default
/// (`static` block partition, chunk entry ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScheduleChoice {
    Kind(ScheduleKind),
    Default,
}

/// A chunk-size choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChunkChoice {
    Size(usize),
    Default,
}

/// The discrete grid ARCS searches per region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigSpace {
    pub threads: Vec<ThreadChoice>,
    pub schedules: Vec<ScheduleChoice>,
    pub chunks: Vec<ChunkChoice>,
    /// What `ThreadChoice::Default` resolves to (the machine's hardware
    /// thread count).
    pub default_threads: usize,
}

impl ConfigSpace {
    /// Table I row for the Sandy Bridge machine.
    pub fn crill() -> Self {
        Self::with_threads(&[2, 4, 8, 16, 24, 32], 32)
    }

    /// Table I row for the POWER8 machine.
    pub fn minotaur() -> Self {
        Self::with_threads(&[20, 40, 80, 120, 160], 160)
    }

    /// The appropriate Table I row for a machine model.
    pub fn for_machine(machine: &Machine) -> Self {
        match machine.name.as_str() {
            "crill" => Self::crill(),
            "minotaur" => Self::minotaur(),
            _ => {
                // Generic fallback: powers of two up to the HW thread count.
                let max = machine.hw_threads();
                let mut t = Vec::new();
                let mut v = 2;
                while v < max {
                    t.push(v);
                    v *= 2;
                }
                t.push(max);
                Self::with_threads(&t, max)
            }
        }
    }

    fn with_threads(counts: &[usize], default_threads: usize) -> Self {
        let mut threads: Vec<ThreadChoice> =
            counts.iter().map(|&c| ThreadChoice::Count(c)).collect();
        threads.push(ThreadChoice::Default);
        ConfigSpace {
            threads,
            schedules: Self::schedule_choices(&ScheduleKind::CLASSIC),
            chunks: vec![
                ChunkChoice::Size(1),
                ChunkChoice::Size(8),
                ChunkChoice::Size(16),
                ChunkChoice::Size(32),
                ChunkChoice::Size(64),
                ChunkChoice::Size(128),
                ChunkChoice::Size(256),
                ChunkChoice::Size(512),
                ChunkChoice::Default,
            ],
            default_threads,
        }
    }

    /// The schedule axis for a list of policy families, `Default` last —
    /// the single source for the Table-I listing, so figure bins and sweep
    /// specs pick up new families without per-bin edits.
    pub fn schedule_choices(kinds: &[ScheduleKind]) -> Vec<ScheduleChoice> {
        kinds
            .iter()
            .map(|&k| ScheduleChoice::Kind(k))
            .chain(std::iter::once(ScheduleChoice::Default))
            .collect()
    }

    /// Widen the schedule axis to the full portfolio: the classic Table I
    /// families plus the self-scheduling extensions (trapezoid, factoring,
    /// awf), `Default` still last so [`default_point`](Self::default_point)
    /// keeps decoding to the paper's baseline. Crill grows 252 → 441
    /// points; the stock [`crill`](Self::crill) grid is unchanged.
    pub fn with_portfolio(mut self) -> Self {
        self.schedules = Self::schedule_choices(&ScheduleKind::ALL);
        self
    }

    /// The Harmony search space: one parameter per knob.
    pub fn to_search_space(&self) -> SearchSpace {
        SearchSpace::new(vec![
            Param::new("threads", self.threads.len()),
            Param::new("schedule", self.schedules.len()),
            Param::new("chunk", self.chunks.len()),
        ])
    }

    /// Total number of grid points.
    pub fn size(&self) -> usize {
        self.threads.len() * self.schedules.len() * self.chunks.len()
    }

    /// Decode a Harmony grid point into a concrete configuration.
    pub fn decode(&self, point: &[usize]) -> OmpConfig {
        assert_eq!(point.len(), 3, "ARCS points are (threads, schedule, chunk)");
        let threads = match self.threads[point[0]] {
            ThreadChoice::Count(n) => n,
            ThreadChoice::Default => self.default_threads,
        };
        let chunk = match self.chunks[point[2]] {
            ChunkChoice::Size(c) => Some(c),
            ChunkChoice::Default => None,
        };
        let schedule = match self.schedules[point[1]] {
            ScheduleChoice::Kind(kind) => Schedule::new(kind, chunk),
            // The implementation-default schedule ignores the chunk knob.
            ScheduleChoice::Default => Schedule::runtime_default(),
        };
        OmpConfig { threads, schedule }
    }

    /// The grid point encoding the paper's default configuration
    /// (default threads / default schedule / default chunk) — the start
    /// point for simplex searches.
    pub fn default_point(&self) -> Point {
        vec![self.threads.len() - 1, self.schedules.len() - 1, self.chunks.len() - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_sizes() {
        let c = ConfigSpace::crill();
        assert_eq!(c.threads.len(), 7);
        assert_eq!(c.schedules.len(), 4);
        assert_eq!(c.chunks.len(), 9);
        assert_eq!(c.size(), 252);
        assert_eq!(ConfigSpace::minotaur().threads.len(), 6);
    }

    #[test]
    fn decode_explicit_point() {
        let c = ConfigSpace::crill();
        // threads=8 (idx 2), guided (idx 2), chunk=32 (idx 3)
        let cfg = c.decode(&[2, 2, 3]);
        assert_eq!(cfg.threads, 8);
        assert_eq!(cfg.schedule, Schedule::guided(32));
    }

    #[test]
    fn decode_default_point_is_paper_baseline() {
        let c = ConfigSpace::crill();
        let cfg = c.decode(&c.default_point());
        let m = Machine::crill();
        assert_eq!(cfg, OmpConfig::default_for(&m));
        assert_eq!(cfg.threads, 32);
        assert_eq!(cfg.schedule, Schedule::static_block());
    }

    #[test]
    fn default_schedule_ignores_chunk() {
        let c = ConfigSpace::crill();
        let a = c.decode(&[0, 3, 0]);
        let b = c.decode(&[0, 3, 7]);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.schedule, Schedule::runtime_default());
    }

    #[test]
    fn every_grid_point_decodes() {
        let c = ConfigSpace::crill();
        let space = c.to_search_space();
        assert_eq!(space.size(), c.size());
        for p in space.iter_points() {
            let cfg = c.decode(&p);
            assert!(cfg.threads >= 2 && cfg.threads <= 32);
        }
    }

    #[test]
    fn portfolio_widens_only_the_schedule_axis() {
        let c = ConfigSpace::crill().with_portfolio();
        assert_eq!(c.threads.len(), 7);
        assert_eq!(c.schedules.len(), 7);
        assert_eq!(c.chunks.len(), 9);
        assert_eq!(c.size(), 441);
        // Default stays last: the search still starts at the baseline.
        assert_eq!(*c.schedules.last().unwrap(), ScheduleChoice::Default);
        let m = Machine::crill();
        assert_eq!(c.decode(&c.default_point()), OmpConfig::default_for(&m));
        // The new families decode; trapezoid is axis index 3 (Table-I
        // order first, then the survey extensions).
        let cfg = c.decode(&[2, 3, 3]);
        assert_eq!(cfg.schedule, Schedule::trapezoid(32));
    }

    #[test]
    fn for_machine_dispatch() {
        assert_eq!(ConfigSpace::for_machine(&Machine::crill()), ConfigSpace::crill());
        assert_eq!(ConfigSpace::for_machine(&Machine::minotaur()), ConfigSpace::minotaur());
    }

    #[test]
    fn display_matches_paper_notation() {
        let cfg = OmpConfig { threads: 16, schedule: Schedule::guided(8) };
        assert_eq!(cfg.to_string(), "16, guided,8");
    }
}
