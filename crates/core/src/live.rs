//! Live ARCS: the full Fig. 2 wiring on the real runtime.
//!
//! ```text
//! Application ──► omprt Runtime ──events──► OMPT adapter ──► APEX timers
//!                      ▲                                        │
//!                      └── set_num_threads / set_schedule ◄── policy ──► Harmony sessions
//! ```
//!
//! An [`ArcsLive`] instance registers an OMPT tool that starts/stops an
//! APEX timer around every parallel region, and an APEX *policy* that, on
//! timer start, asks the per-region Harmony session for the next
//! configuration and applies it through the runtime's control knobs —
//! which works on the *current* invocation because `arcs-omprt` fires
//! `parallel_begin` before reading its ICVs, just like the paper's
//! modified OpenMP runtime. On timer stop the policy reports the measured
//! duration back to the session.

use crate::tuner::{RegionTuner, TunerOptions};
use arcs_apex::{Apex, PolicyEventKind, PolicyTrigger};
use arcs_omprt::{RegionId, RegionRecord, Runtime, Tool};
use parking_lot::Mutex;
use std::sync::Arc;

/// The OMPT adapter: translates runtime events into APEX timer calls.
struct OmptAdapter {
    rt: Arc<Runtime>,
    apex: Arc<Apex>,
}

impl Tool for OmptAdapter {
    fn parallel_begin(&self, region: RegionId) {
        let task = self.apex.task(&self.rt.region_name(region));
        self.apex.start(task);
    }

    fn parallel_end(&self, region: RegionId, _record: &RegionRecord) {
        let task = self.apex.task(&self.rt.region_name(region));
        let _ = self.apex.stop(task);
    }
}

/// Handle to a live ARCS attachment.
pub struct ArcsLive {
    apex: Arc<Apex>,
    tuner: Arc<Mutex<RegionTuner>>,
}

impl ArcsLive {
    /// Attach ARCS to a runtime: registers the OMPT adapter and the tuning
    /// policy. From this point every `parallel_for` on `rt` is measured
    /// and adaptively reconfigured.
    pub fn attach(rt: Arc<Runtime>, options: TunerOptions) -> ArcsLive {
        let apex = Arc::new(Apex::new());
        let tuner = Arc::new(Mutex::new(RegionTuner::new(options)));

        rt.tools().register(Arc::new(OmptAdapter { rt: Arc::clone(&rt), apex: Arc::clone(&apex) }));

        // Policy: on timer start, select and apply the next configuration.
        {
            let tuner = Arc::clone(&tuner);
            let rt = Arc::clone(&rt);
            apex.register_policy("arcs-select", PolicyTrigger::OnTimerStart, move |ev| {
                let decision = tuner.lock().begin(&ev.task_name);
                rt.set_num_threads(decision.config.threads);
                rt.set_schedule(decision.config.schedule);
            });
        }
        // Policy: on timer stop, report the measurement.
        {
            let tuner = Arc::clone(&tuner);
            apex.register_policy("arcs-report", PolicyTrigger::OnTimerStop, move |ev| {
                if let PolicyEventKind::TimerStop { duration_s } = ev.kind {
                    tuner.lock().end(&ev.task_name, duration_s);
                }
            });
        }

        ArcsLive { apex, tuner }
    }

    /// The APEX instance collecting profiles (for analysis/reporting).
    pub fn apex(&self) -> &Arc<Apex> {
        &self.apex
    }

    /// Has every encountered region converged?
    pub fn converged(&self) -> bool {
        self.tuner.lock().converged()
    }

    /// Best configuration per region found so far.
    pub fn best_configs(&self) -> std::collections::HashMap<String, crate::config::OmpConfig> {
        self.tuner.lock().best_configs()
    }

    /// Export the history file ("save the best parameters found").
    pub fn export_history(&self, context: &str) -> arcs_harmony::History<crate::config::OmpConfig> {
        self.tuner.lock().export_history(context)
    }

    /// Tuner bookkeeping counters.
    pub fn stats(&self) -> crate::tuner::TunerStats {
        self.tuner.lock().stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConfigSpace;
    use arcs_harmony::NmOptions;
    use crate::tuner::TuningMode;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn small_space(default_threads: usize) -> ConfigSpace {
        // A reduced space so live searches converge in few invocations.
        use crate::config::{ChunkChoice, ScheduleChoice, ThreadChoice};
        use arcs_omprt::ScheduleKind;
        ConfigSpace {
            threads: vec![ThreadChoice::Count(1), ThreadChoice::Count(2), ThreadChoice::Default],
            schedules: vec![
                ScheduleChoice::Kind(ScheduleKind::Dynamic),
                ScheduleChoice::Kind(ScheduleKind::Static),
                ScheduleChoice::Default,
            ],
            chunks: vec![ChunkChoice::Size(1), ChunkChoice::Size(16), ChunkChoice::Default],
            default_threads,
        }
    }

    #[test]
    fn live_tuning_drives_configs_through_the_runtime() {
        let rt = Arc::new(Runtime::new(4));
        let options = TunerOptions {
            space: small_space(4),
            mode: TuningMode::Online(NmOptions {
                max_evals: 30,
                ..NmOptions::default()
            }),
            min_region_time_s: 0.0,
        };
        let live = ArcsLive::attach(Arc::clone(&rt), options);

        let region = rt.register_region("live/loop");
        let work = AtomicUsize::new(0);
        for _ in 0..40 {
            rt.parallel_for(region, 0..256, |i| {
                // A few microseconds of work per iteration.
                let mut acc = i as u64;
                for _ in 0..200 {
                    acc = acc.wrapping_mul(0x9E3779B9).rotate_left(7);
                }
                work.fetch_add((acc & 1) as usize, Ordering::Relaxed);
            });
        }

        let stats = live.stats();
        assert_eq!(stats.invocations, 40);
        assert!(stats.config_changes > 1, "search must try multiple configs");
        // APEX saw every invocation.
        let task = live.apex().task("live/loop");
        assert_eq!(live.apex().profile(task).unwrap().count, 40);
        // A best configuration exists and is valid.
        let best = live.best_configs()["live/loop"];
        assert!(best.threads >= 1 && best.threads <= 4);
    }

    #[test]
    fn live_history_export_roundtrips() {
        let rt = Arc::new(Runtime::new(2));
        let options = TunerOptions {
            space: small_space(2),
            mode: TuningMode::Online(NmOptions { max_evals: 10, ..NmOptions::default() }),
            min_region_time_s: 0.0,
        };
        let live = ArcsLive::attach(Arc::clone(&rt), options);
        let region = rt.register_region("live/export");
        for _ in 0..12 {
            rt.parallel_for(region, 0..64, |_| {});
        }
        let h = live.export_history("test-ctx");
        assert_eq!(h.context, "test-ctx");
        assert!(h.get("live/export").is_some());
    }

    #[test]
    fn replay_mode_applies_saved_config_live() {
        use arcs_harmony::History;
        use arcs_omprt::Schedule;
        let rt = Arc::new(Runtime::new(4));
        let mut h = History::new("ctx");
        let saved = crate::config::OmpConfig { threads: 2, schedule: Schedule::dynamic(16) };
        h.insert("live/replay", saved, 0.1, 9);
        let options = TunerOptions {
            space: small_space(4),
            mode: TuningMode::OfflineReplay(h),
            min_region_time_s: 0.0,
        };
        let _live = ArcsLive::attach(Arc::clone(&rt), options);
        let region = rt.register_region("live/replay");
        let rec = rt.parallel_for(region, 0..64, |_| {});
        assert_eq!(rec.threads, 2);
        assert_eq!(rec.schedule, Schedule::dynamic(16));
    }
}
