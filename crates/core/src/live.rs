//! Live ARCS: the full Fig. 2 wiring on the real runtime.
//!
//! ```text
//! Application ──► omprt Runtime ──events──► OMPT adapter ──► APEX timers
//!                      ▲                                        │
//!                      └── set_num_threads / set_schedule ◄── policy ──► Harmony sessions
//! ```
//!
//! An [`ArcsLive`] instance registers an OMPT tool that starts/stops an
//! APEX timer around every parallel region, and an APEX *policy* that, on
//! timer start, asks the per-region Harmony session for the next
//! configuration and applies it through the runtime's control knobs —
//! which works on the *current* invocation because `arcs-omprt` fires
//! `parallel_begin` before reading its ICVs, just like the paper's
//! modified OpenMP runtime. On timer stop the policy reports the measured
//! duration back to the session.

use crate::backend::{self, Backend, RegionFeatures, RegionRun};
use crate::cap::{CapHandle, CapWatch};
use crate::faults::{FaultClock, MeterFault};
use crate::tunable::TunedConfig;
use crate::tuner::{RegionTuner, TunerOptions};
use arcs_apex::{Apex, PolicyEventKind, PolicyTrigger};
use arcs_metrics::MetricsRegistry;
use arcs_omprt::{RegionId, RegionRecord, Runtime, Tool};
use arcs_powersim::{FaultPlan, InvocationFaults, Machine, MeasureError, RegionModel};
use arcs_trace::{TraceEvent, TraceSink};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// The OMPT adapter: translates runtime events into APEX timer calls.
struct OmptAdapter {
    rt: Arc<Runtime>,
    apex: Arc<Apex>,
}

impl Tool for OmptAdapter {
    fn parallel_begin(&self, region: RegionId) {
        let task = self.apex.task(&self.rt.region_name(region));
        self.apex.start(task);
    }

    fn parallel_end(&self, region: RegionId, _record: &RegionRecord) {
        let task = self.apex.task(&self.rt.region_name(region));
        let _ = self.apex.stop(task);
    }
}

/// Handle to a live ARCS attachment.
pub struct ArcsLive {
    apex: Arc<Apex>,
    tuner: Arc<Mutex<RegionTuner>>,
}

impl ArcsLive {
    /// Attach ARCS to a runtime: registers the OMPT adapter and the tuning
    /// policy. From this point every `parallel_for` on `rt` is measured
    /// and adaptively reconfigured.
    pub fn attach(rt: Arc<Runtime>, options: TunerOptions) -> ArcsLive {
        let apex = Arc::new(Apex::new());
        let tuner = Arc::new(Mutex::new(RegionTuner::new(options)));

        rt.tools().register(Arc::new(OmptAdapter { rt: Arc::clone(&rt), apex: Arc::clone(&apex) }));

        // Policy: on timer start, select and apply the next configuration.
        {
            let tuner = Arc::clone(&tuner);
            let rt = Arc::clone(&rt);
            apex.register_policy("arcs-select", PolicyTrigger::OnTimerStart, move |ev| {
                let decision = tuner.lock().begin(&ev.task_name);
                rt.set_num_threads(decision.config.omp.threads);
                rt.set_schedule(decision.config.omp.schedule);
            });
        }
        // Policy: on timer stop, report the measurement.
        {
            let tuner = Arc::clone(&tuner);
            apex.register_policy("arcs-report", PolicyTrigger::OnTimerStop, move |ev| {
                if let PolicyEventKind::TimerStop { duration_s } = ev.kind {
                    tuner.lock().end(&ev.task_name, duration_s);
                }
            });
        }

        ArcsLive { apex, tuner }
    }

    /// The APEX instance collecting profiles (for analysis/reporting).
    pub fn apex(&self) -> &Arc<Apex> {
        &self.apex
    }

    /// Has every encountered region converged?
    pub fn converged(&self) -> bool {
        self.tuner.lock().converged()
    }

    /// Best configuration per region found so far.
    pub fn best_configs(&self) -> std::collections::HashMap<String, crate::config::OmpConfig> {
        self.tuner.lock().best_configs()
    }

    /// Export the history file ("save the best parameters found").
    pub fn export_history(&self, context: &str) -> arcs_harmony::History<crate::config::OmpConfig> {
        self.tuner.lock().export_history(context)
    }

    /// Tuner bookkeeping counters.
    pub fn stats(&self) -> crate::tuner::TunerStats {
        self.tuner.lock().stats()
    }
}

/// [`Backend`] over the real `arcs-omprt` runtime: region models execute
/// as calibrated spin loops on actual worker threads, so the shared driver
/// in [`crate::backend`] exercises genuine fork/join, scheduling and
/// barrier behaviour.
///
/// What the live path cannot observe it approximates honestly:
///
/// * **time** is real wall-clock; each iteration spins for the modelled
///   per-iteration cost scaled by `time_scale` (keep it small — the point
///   is relative behaviour, not seconds);
/// * **energy** has no portable host counter, so invocations are priced
///   through the machine's power model at the configured cap (overheads
///   at [`backend::overhead_power_w`], like the simulator);
/// * **cache miss rates** are not measurable portably and report as 0.
pub struct LiveExecutor {
    rt: Arc<Runtime>,
    machine: Machine,
    cap_w: f64,
    /// Multiplier from modelled region seconds to real spin seconds.
    time_scale: f64,
    regions: HashMap<String, RegionId>,
    energy_acc_j: f64,
    /// Last meter value handed out — the stale answer for dropped samples.
    last_read_j: f64,
    /// Invocation ordinal per region (keys the fault plan's decisions,
    /// mirroring the simulator's counter).
    invocations: HashMap<String, u64>,
    /// Shared ordinal bookkeeping — the same [`FaultClock`] the simulator
    /// uses, so one plan perturbs both backends identically.
    faults: Option<FaultClock>,
    /// Externally-owned cap, polled at region boundaries.
    cap_watch: Option<CapWatch>,
    trace: Option<Arc<dyn TraceSink>>,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl LiveExecutor {
    /// Wrap a runtime together with the machine model whose workloads it
    /// will execute. The cap is clamped to the model's RAPL range.
    pub fn new(rt: Arc<Runtime>, machine: Machine, cap_w: f64) -> Self {
        let cap_w = cap_w.clamp(machine.power.tdp_w * 0.25, machine.power.tdp_w);
        LiveExecutor {
            rt,
            machine,
            cap_w,
            time_scale: 1e-3,
            regions: HashMap::new(),
            energy_acc_j: 0.0,
            last_read_j: 0.0,
            invocations: HashMap::new(),
            faults: None,
            cap_watch: None,
            trace: None,
            metrics: None,
        }
    }

    /// Watch an externally-owned [`CapHandle`] (see
    /// [`SimExecutor::with_cap_handle`](crate::executor::SimExecutor::with_cap_handle)):
    /// the live path has no host RAPL, so only the pricing envelope moves.
    pub fn with_cap_handle(mut self, handle: CapHandle) -> Self {
        Backend::attach_cap_handle(&mut self, handle);
        self
    }

    /// Attach a trace sink; the shared run driver emits region, power and
    /// overhead events into it (energy figures come from the power model,
    /// like the executor's accounting).
    pub fn with_trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Attach a metrics registry; the wrapped runtime's region/chunk
    /// counters and the shared driver's counters resolve against it.
    pub fn with_metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        Backend::attach_metrics(&mut self, registry);
        self
    }

    /// Adjust how much real time one modelled second costs (default
    /// 1e-3). Non-positive or non-finite scales are ignored (debug
    /// builds assert — a zero scale is a caller bug, not a runtime
    /// condition worth panicking production over).
    pub fn with_time_scale(mut self, scale: f64) -> Self {
        debug_assert!(scale.is_finite() && scale > 0.0, "time scale must be positive: {scale}");
        if scale.is_finite() && scale > 0.0 {
            self.time_scale = scale;
        }
        self
    }

    /// Attach a deterministic [`FaultPlan`] (see the simulator's
    /// [`SimExecutor::with_faults`](crate::executor::SimExecutor::with_faults)):
    /// the same plan and seed perturb the live path identically.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        Backend::attach_faults(&mut self, plan);
        self
    }

    /// Emit the trace/metrics breadcrumbs for one injected fault.
    fn note_fault(&self, kind: &str, region: &str, magnitude: f64) {
        if let Some(sink) = &self.trace {
            if sink.enabled() {
                sink.record(
                    None,
                    TraceEvent::FaultInjected {
                        kind: kind.to_string(),
                        region: region.to_string(),
                        magnitude,
                    },
                );
            }
        }
        if let Some(registry) = &self.metrics {
            registry.counter(&format!("arcs/faults/{kind}")).inc();
        }
    }

    /// Apply a newly requested cap to the pricing envelope (no host RAPL
    /// to reprogram) and trace the move — one shared path for scheduled
    /// cap faults and external (broker) reallocations.
    fn apply_requested_cap(&mut self, cap: f64) {
        let effective = cap.clamp(self.machine.power.tdp_w * 0.25, self.machine.power.tdp_w);
        self.cap_w = effective;
        if let Some(sink) = &self.trace {
            if sink.enabled() {
                sink.record(
                    None,
                    TraceEvent::CapChange { requested_w: cap, effective_w: effective },
                );
            }
        }
    }

    /// Next invocation ordinal for `region` (0-based).
    fn next_invocation(&mut self, region: &str) -> u64 {
        match self.invocations.get_mut(region) {
            Some(n) => {
                *n += 1;
                *n
            }
            None => {
                self.invocations.insert(region.to_string(), 0);
                0
            }
        }
    }

    pub fn runtime(&self) -> &Arc<Runtime> {
        &self.rt
    }

    fn region_id(&mut self, name: &str) -> RegionId {
        match self.regions.get(name) {
            Some(&id) => id,
            None => {
                let id = self.rt.register_region(name);
                self.regions.insert(name.to_string(), id);
                id
            }
        }
    }

    /// Average package power while `threads` are busy under the cap.
    fn package_power_w(&self, threads: usize) -> f64 {
        let m = &self.machine;
        let active = m.active_cores_per_socket(threads);
        let max_active = active.iter().copied().max().unwrap_or(0);
        let f = m.frequency_under_cap(self.cap_w, max_active);
        let p_core = m.power.c0 + m.power.c1 * f.powi(3);
        let busy: usize = active.iter().sum();
        m.sockets as f64 * (m.power.p_uncore_w + m.power.p_dram_background_w)
            + busy as f64 * p_core
            + (m.total_cores() - busy) as f64 * m.power.p_core_idle_w
    }
}

/// Busy-wait for `ns` nanoseconds (the calibrated stand-in for loop-body
/// work; sleeping would hide scheduling behaviour from the runtime).
fn spin_ns(ns: f64) {
    if ns <= 0.0 {
        return;
    }
    let start = Instant::now();
    let budget = std::time::Duration::from_nanos(ns as u64);
    while start.elapsed() < budget {
        std::hint::spin_loop();
    }
}

impl Backend for LiveExecutor {
    fn machine(&self) -> &Machine {
        &self.machine
    }

    fn power_cap_w(&self) -> f64 {
        self.cap_w
    }

    fn begin_run(&mut self) {
        self.energy_acc_j = 0.0;
        self.last_read_j = 0.0;
        if let Some(fc) = &mut self.faults {
            fc.begin_run();
        }
    }

    fn charge_overhead(&mut self, dt_s: f64) {
        self.energy_acc_j += dt_s * backend::overhead_power_w(&self.machine);
    }

    // The frequency knob (`cfg.freq_ghz`) is ignored here: there is no
    // portable userspace DVFS control, so live invocations always run (and
    // are priced) at whatever the cap allows — exactly the base paper's
    // behaviour. The simulator is the backend that honours the knob.
    fn run_region(&mut self, region: &RegionModel, cfg: TunedConfig) -> RegionRun {
        let inv = self.next_invocation(&region.name);
        // External cap move first; a cap fault scheduled for the same
        // invocation overrides it below.
        if let Some(cap) = self.cap_watch.as_mut().and_then(|w| w.poll()) {
            self.apply_requested_cap(cap);
        }
        let ifaults: Option<InvocationFaults> =
            self.faults.as_mut().map(|fc| fc.invocation_faults(&region.name, inv));
        // Scheduled cap change: no host RAPL to reprogram, so only the
        // pricing envelope moves (clamped like the constructor does).
        if let Some(cap) = ifaults.and_then(|f| f.cap_change_w) {
            self.note_fault("cap_change", &region.name, cap);
            self.apply_requested_cap(cap);
        }
        let id = self.region_id(&region.name);
        let threads = cfg.omp.threads.clamp(1, self.rt.max_threads());
        self.rt.set_num_threads(threads);
        self.rt.set_schedule(cfg.omp.schedule);

        let weights = region.weights();
        // cycles / GHz = ns of modelled compute per unit weight.
        let ns_per_weight = region.cycles_per_iter / self.machine.f_base_ghz * self.time_scale;
        let start = Instant::now();
        let rec = self.rt.parallel_for(id, 0..region.iterations, |i| {
            spin_ns(weights[i] * ns_per_weight);
        });
        let mut wall_s = start.elapsed().as_secs_f64();
        if let Some(f) = ifaults {
            if f.straggler_factor > 1.0 {
                // A real slowdown the live path cannot spin out thread-
                // accurately: stretch the wall clock (the pricing line
                // below then charges the stretched duration too).
                wall_s *= f.straggler_factor;
                self.note_fault("straggler", &region.name, f.straggler_factor);
            }
        }

        // Price the invocation on the model and bump the package meter;
        // the driver differences the meter to attribute the energy.
        self.energy_acc_j += wall_s * self.package_power_w(rec.threads);
        let mut observed = wall_s;
        if let Some(f) = ifaults {
            if f.spike_factor > 1.0 {
                // Measurement-only: the timer lies, the machine doesn't.
                observed *= f.spike_factor;
                self.note_fault("timer_spike", &region.name, f.spike_factor);
            }
            if f.drop_sample {
                if let Some(fc) = &mut self.faults {
                    fc.arm_stale_read();
                }
                self.note_fault("sample_drop", &region.name, 1.0);
            }
        }
        RegionRun {
            time_s: observed,
            features: RegionFeatures {
                busy_s: rec.total_busy().as_secs_f64(),
                barrier_s: rec.total_barrier_wait().as_secs_f64(),
                // No portable hardware counters on the live path.
                l1_miss_rate: 0.0,
                l2_miss_rate: 0.0,
                l3_miss_rate: 0.0,
            },
        }
    }

    fn energy_j(&mut self) -> Result<f64, MeasureError> {
        match self.faults.as_mut().and_then(FaultClock::meter_fault) {
            Some(MeterFault::Fail(ord)) => {
                self.note_fault("rapl_read", "", ord as f64);
                Err(MeasureError::RaplRead { attempts: 1 })
            }
            Some(MeterFault::Stale) => Ok(self.last_read_j),
            None => {
                self.last_read_j = self.energy_acc_j;
                Ok(self.energy_acc_j)
            }
        }
    }

    fn attach_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(FaultClock::new(plan));
    }

    fn attach_cap_handle(&mut self, handle: CapHandle) {
        let requested = handle.get();
        self.cap_w = requested.clamp(self.machine.power.tdp_w * 0.25, self.machine.power.tdp_w);
        self.cap_watch = Some(CapWatch::new(handle));
    }

    fn trace(&self) -> Option<&Arc<dyn TraceSink>> {
        self.trace.as_ref()
    }

    fn attach_trace(&mut self, sink: Arc<dyn TraceSink>) {
        self.trace = Some(sink);
    }

    fn metrics(&self) -> Option<&Arc<MetricsRegistry>> {
        self.metrics.as_ref()
    }

    fn attach_metrics(&mut self, registry: Arc<MetricsRegistry>) {
        self.rt.attach_metrics(&registry);
        self.metrics = Some(registry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Runner;
    use crate::config::ConfigSpace;
    use crate::tuner::TuningMode;
    use arcs_harmony::NmOptions;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn small_space(default_threads: usize) -> ConfigSpace {
        // A reduced space so live searches converge in few invocations.
        use crate::config::{ChunkChoice, ScheduleChoice, ThreadChoice};
        use arcs_omprt::ScheduleKind;
        ConfigSpace {
            threads: vec![ThreadChoice::Count(1), ThreadChoice::Count(2), ThreadChoice::Default],
            schedules: vec![
                ScheduleChoice::Kind(ScheduleKind::Dynamic),
                ScheduleChoice::Kind(ScheduleKind::Static),
                ScheduleChoice::Default,
            ],
            chunks: vec![ChunkChoice::Size(1), ChunkChoice::Size(16), ChunkChoice::Default],
            default_threads,
        }
    }

    #[test]
    fn live_tuning_drives_configs_through_the_runtime() {
        let rt = Arc::new(Runtime::new(4));
        let options = TunerOptions::new(
            small_space(4),
            TuningMode::Online(NmOptions { max_evals: 30, ..NmOptions::default() }),
        );
        let live = ArcsLive::attach(Arc::clone(&rt), options);

        let region = rt.register_region("live/loop");
        let work = AtomicUsize::new(0);
        for _ in 0..40 {
            rt.parallel_for(region, 0..256, |i| {
                // A few microseconds of work per iteration.
                let mut acc = i as u64;
                for _ in 0..200 {
                    acc = acc.wrapping_mul(0x9E3779B9).rotate_left(7);
                }
                work.fetch_add((acc & 1) as usize, Ordering::Relaxed);
            });
        }

        let stats = live.stats();
        assert_eq!(stats.invocations, 40);
        assert!(stats.config_changes > 1, "search must try multiple configs");
        // APEX saw every invocation.
        let task = live.apex().task("live/loop");
        assert_eq!(live.apex().profile(task).unwrap().count, 40);
        // A best configuration exists and is valid.
        let best = live.best_configs()["live/loop"];
        assert!(best.threads >= 1 && best.threads <= 4);
    }

    #[test]
    fn live_history_export_roundtrips() {
        let rt = Arc::new(Runtime::new(2));
        let options = TunerOptions::new(
            small_space(2),
            TuningMode::Online(NmOptions { max_evals: 10, ..NmOptions::default() }),
        );
        let live = ArcsLive::attach(Arc::clone(&rt), options);
        let region = rt.register_region("live/export");
        for _ in 0..12 {
            rt.parallel_for(region, 0..64, |_| {});
        }
        let h = live.export_history("test-ctx");
        assert_eq!(h.context, "test-ctx");
        assert!(h.get("live/export").is_some());
    }

    #[test]
    fn live_executor_runs_the_shared_driver() {
        use arcs_powersim::{ImbalanceProfile, MemoryProfile, StrideClass, WorkloadDescriptor};
        let region = RegionModel {
            name: "live/kernel".into(),
            iterations: 64,
            cycles_per_iter: 50_000.0,
            imbalance: ImbalanceProfile::Uniform,
            memory: MemoryProfile {
                footprint_bytes: 1e6,
                accesses_per_iter: 10.0,
                stride: StrideClass::Medium,
                temporal_reuse: 0.5,
                hot_bytes_per_thread: 4096.0,
            },
            serial_s: 0.0,
            critical_s: 0.0,
        };
        let wl = WorkloadDescriptor { name: "live-smoke".into(), step: vec![region], timesteps: 6 };
        let rt = Arc::new(Runtime::new(4));
        let mut exec = LiveExecutor::new(Arc::clone(&rt), arcs_powersim::Machine::crill(), 85.0)
            .with_time_scale(1e-2);

        // Default run through the backend-agnostic driver: real threads,
        // no overheads.
        let rep = Runner::new(&mut exec).workload(&wl).run().unwrap();
        assert_eq!(rep.strategy, "default");
        assert_eq!(rep.machine, "crill");
        assert_eq!(rep.per_region["live/kernel"].invocations, 6);
        assert!(rep.time_s > 0.0);
        assert!(rep.energy_j > 0.0);
        assert_eq!(rep.config_change_overhead_s, 0.0);

        // Tuned run: overheads are charged by the same driver code path
        // the simulator uses.
        let mut tuner = RegionTuner::new(TunerOptions::new(
            small_space(4),
            TuningMode::Online(NmOptions { max_evals: 10, ..NmOptions::default() }),
        ));
        let tuned = Runner::new(&mut exec).workload(&wl).tuner(&mut tuner).run().unwrap();
        let m = exec.machine().clone();
        assert!((tuned.instrumentation_overhead_s - 6.0 * m.instrumentation_s).abs() < 1e-12);
        assert!(tuned.config_change_overhead_s > 0.0);
        assert!(tuned.tuner.unwrap().invocations == 6);
    }

    #[test]
    fn replay_mode_applies_saved_config_live() {
        use arcs_harmony::History;
        use arcs_omprt::Schedule;
        let rt = Arc::new(Runtime::new(4));
        let mut h = History::new("ctx");
        let saved = crate::config::OmpConfig { threads: 2, schedule: Schedule::dynamic(16) };
        h.insert("live/replay", saved, 0.1, 9);
        let options = TunerOptions::new(small_space(4), TuningMode::OfflineReplay(h));
        let _live = ArcsLive::attach(Arc::clone(&rt), options);
        let region = rt.register_region("live/replay");
        let rec = rt.parallel_for(region, 0..64, |_| {});
        assert_eq!(rec.threads, 2);
        assert_eq!(rec.schedule, Schedule::dynamic(16));
    }
}
