//! Run reports: what an application execution measured.

use crate::config::OmpConfig;
use crate::tuner::TunerStats;
use arcs_trace::Objective;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-region aggregate over a whole application run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionSummary {
    pub invocations: u64,
    /// Total wall time spent in the region (fork to join), seconds.
    pub total_time_s: f64,
    /// Total per-thread loop-body time (OMPT `OpenMP_LOOP`).
    pub busy_s: f64,
    /// Total per-thread barrier wait (OMPT `OpenMP_BARRIER`).
    pub barrier_s: f64,
    /// Invocation-weighted mean cache miss rates.
    pub l1_miss_rate: f64,
    pub l2_miss_rate: f64,
    pub l3_miss_rate: f64,
    /// The configuration in effect for the final invocation.
    pub final_config: Option<OmpConfig>,
}

impl Default for RegionSummary {
    fn default() -> Self {
        RegionSummary {
            invocations: 0,
            total_time_s: 0.0,
            busy_s: 0.0,
            barrier_s: 0.0,
            l1_miss_rate: 0.0,
            l2_miss_rate: 0.0,
            l3_miss_rate: 0.0,
            final_config: None,
        }
    }
}

impl RegionSummary {
    /// Mean region duration per invocation.
    pub fn mean_time_s(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.total_time_s / self.invocations as f64
        }
    }
}

/// Whole-application run report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppRunReport {
    pub app: String,
    pub machine: String,
    pub power_cap_w: f64,
    pub strategy: String,
    /// The objective the run was scored by (`Time` unless the caller
    /// selected otherwise). Absent in pre-v3 reports, which were all
    /// time-scored.
    #[serde(default)]
    pub objective: Objective,
    /// End-to-end wall time including all overheads, seconds.
    pub time_s: f64,
    /// Package energy (all sockets), joules.
    pub energy_j: f64,
    /// Time spent changing configurations (`omp_set_*` calls).
    pub config_change_overhead_s: f64,
    /// Time spent in measurement instrumentation (OMPT + APEX).
    pub instrumentation_overhead_s: f64,
    pub per_region: BTreeMap<String, RegionSummary>,
    pub tuner: Option<TunerStats>,
}

impl AppRunReport {
    /// Average package power over the run.
    pub fn avg_power_w(&self) -> f64 {
        if self.time_s > 0.0 {
            self.energy_j / self.time_s
        } else {
            0.0
        }
    }

    /// Search overhead estimate: total time minus what the run would have
    /// taken at the final (converged) configurations — only meaningful for
    /// online strategies; computed by the caller where needed.
    pub fn total_overhead_s(&self) -> f64 {
        self.config_change_overhead_s + self.instrumentation_overhead_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_time_handles_zero_invocations() {
        let r = RegionSummary::default();
        assert_eq!(r.mean_time_s(), 0.0);
    }

    #[test]
    fn avg_power() {
        let rep = AppRunReport {
            app: "x".into(),
            machine: "crill".into(),
            power_cap_w: 85.0,
            strategy: "default".into(),
            objective: Objective::Time,
            time_s: 10.0,
            energy_j: 800.0,
            config_change_overhead_s: 0.0,
            instrumentation_overhead_s: 0.0,
            per_region: BTreeMap::new(),
            tuner: None,
        };
        assert_eq!(rep.avg_power_w(), 80.0);
    }

    #[test]
    fn report_serialises() {
        let mut per_region = BTreeMap::new();
        per_region.insert("r".to_string(), RegionSummary::default());
        let rep = AppRunReport {
            app: "sp.B".into(),
            machine: "crill".into(),
            power_cap_w: 55.0,
            strategy: "arcs-offline".into(),
            objective: Objective::EnergyDelay,
            time_s: 1.0,
            energy_j: 2.0,
            config_change_overhead_s: 0.1,
            instrumentation_overhead_s: 0.05,
            per_region,
            tuner: None,
        };
        let json = serde_json::to_string(&rep).unwrap();
        let back: AppRunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(rep, back);
        assert!((back.total_overhead_s() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn reports_without_an_objective_field_default_to_time() {
        // Reports written before the objective layer carry no `objective`
        // key; they were all time-scored.
        let rep = AppRunReport {
            app: "sp.B".into(),
            machine: "crill".into(),
            power_cap_w: 55.0,
            strategy: "default".into(),
            objective: Objective::EnergyDelay,
            time_s: 1.0,
            energy_j: 2.0,
            config_change_overhead_s: 0.0,
            instrumentation_overhead_s: 0.0,
            per_region: BTreeMap::new(),
            tuner: None,
        };
        let json = serde_json::to_string(&rep).unwrap();
        let legacy = json.replace("\"objective\":\"edp\",", "");
        assert_ne!(legacy, json, "objective key must have been present");
        let back: AppRunReport = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.objective, Objective::Time);
    }
}
