//! Run reports: what an application execution measured.

use crate::config::OmpConfig;
use crate::tuner::TunerStats;
use arcs_trace::Objective;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// How a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RunStatus {
    /// The run completed with no unrecovered faults.
    #[default]
    Ok,
    /// The run completed, but the measurement error budget was exhausted
    /// and the tuner froze to its best-known configurations (graceful
    /// degradation — see DESIGN.md §3.11).
    Degraded,
}

impl fmt::Display for RunStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunStatus::Ok => write!(f, "ok"),
            RunStatus::Degraded => write!(f, "degraded"),
        }
    }
}

/// Fault and recovery counters accumulated by the driver and tuner over
/// one run. All-zero for an unfaulted run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultRecovery {
    /// Package-meter read retries the driver spent.
    pub meter_retries: u64,
    /// Meter reads that still failed after the retry budget (absorbed
    /// against the error budget, or fatal without one).
    pub hard_faults: u64,
    /// Region measurements the tuner rejected as outliers.
    pub rejected: u64,
    /// Search-session restarts triggered by rejection streaks.
    pub restarts: u64,
    /// Regions frozen to their best-known configuration.
    pub frozen_regions: u64,
}

impl FaultRecovery {
    /// Did anything fire?
    pub fn any(&self) -> bool {
        *self != FaultRecovery::default()
    }
}

/// Per-region aggregate over a whole application run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionSummary {
    pub invocations: u64,
    /// Total wall time spent in the region (fork to join), seconds.
    pub total_time_s: f64,
    /// Total per-thread loop-body time (OMPT `OpenMP_LOOP`).
    pub busy_s: f64,
    /// Total per-thread barrier wait (OMPT `OpenMP_BARRIER`).
    pub barrier_s: f64,
    /// Invocation-weighted mean cache miss rates.
    pub l1_miss_rate: f64,
    pub l2_miss_rate: f64,
    pub l3_miss_rate: f64,
    /// The configuration in effect for the final invocation.
    pub final_config: Option<OmpConfig>,
}

impl Default for RegionSummary {
    fn default() -> Self {
        RegionSummary {
            invocations: 0,
            total_time_s: 0.0,
            busy_s: 0.0,
            barrier_s: 0.0,
            l1_miss_rate: 0.0,
            l2_miss_rate: 0.0,
            l3_miss_rate: 0.0,
            final_config: None,
        }
    }
}

impl RegionSummary {
    /// Mean region duration per invocation.
    pub fn mean_time_s(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.total_time_s / self.invocations as f64
        }
    }
}

/// Whole-application run report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppRunReport {
    pub app: String,
    pub machine: String,
    pub power_cap_w: f64,
    pub strategy: String,
    /// The objective the run was scored by (`Time` unless the caller
    /// selected otherwise). Absent in pre-v3 reports, which were all
    /// time-scored.
    #[serde(default)]
    pub objective: Objective,
    /// End-to-end wall time including all overheads, seconds.
    pub time_s: f64,
    /// Package energy (all sockets), joules.
    pub energy_j: f64,
    /// Time spent changing configurations (`omp_set_*` calls).
    pub config_change_overhead_s: f64,
    /// Time spent in measurement instrumentation (OMPT + APEX).
    pub instrumentation_overhead_s: f64,
    pub per_region: BTreeMap<String, RegionSummary>,
    pub tuner: Option<TunerStats>,
    /// Whether the run completed cleanly or degraded after exhausting
    /// its error budget. Absent in pre-v5 reports, which had no fault
    /// substrate and were all `Ok`.
    #[serde(default)]
    pub status: RunStatus,
    /// Fault/recovery counters (all-zero without an attached fault
    /// plan).
    #[serde(default)]
    pub faults: FaultRecovery,
}

impl AppRunReport {
    /// Average package power over the run.
    pub fn avg_power_w(&self) -> f64 {
        if self.time_s > 0.0 {
            self.energy_j / self.time_s
        } else {
            0.0
        }
    }

    /// Search overhead estimate: total time minus what the run would have
    /// taken at the final (converged) configurations — only meaningful for
    /// online strategies; computed by the caller where needed.
    pub fn total_overhead_s(&self) -> f64 {
        self.config_change_overhead_s + self.instrumentation_overhead_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_time_handles_zero_invocations() {
        let r = RegionSummary::default();
        assert_eq!(r.mean_time_s(), 0.0);
    }

    #[test]
    fn avg_power() {
        let rep = AppRunReport {
            app: "x".into(),
            machine: "crill".into(),
            power_cap_w: 85.0,
            strategy: "default".into(),
            objective: Objective::Time,
            time_s: 10.0,
            energy_j: 800.0,
            config_change_overhead_s: 0.0,
            instrumentation_overhead_s: 0.0,
            per_region: BTreeMap::new(),
            tuner: None,
            status: RunStatus::Ok,
            faults: FaultRecovery::default(),
        };
        assert_eq!(rep.avg_power_w(), 80.0);
    }

    #[test]
    fn report_serialises() {
        let mut per_region = BTreeMap::new();
        per_region.insert("r".to_string(), RegionSummary::default());
        let rep = AppRunReport {
            app: "sp.B".into(),
            machine: "crill".into(),
            power_cap_w: 55.0,
            strategy: "arcs-offline".into(),
            objective: Objective::EnergyDelay,
            time_s: 1.0,
            energy_j: 2.0,
            config_change_overhead_s: 0.1,
            instrumentation_overhead_s: 0.05,
            per_region,
            tuner: None,
            status: RunStatus::Degraded,
            faults: FaultRecovery { hard_faults: 3, frozen_regions: 1, ..Default::default() },
        };
        let json = serde_json::to_string(&rep).unwrap();
        let back: AppRunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(rep, back);
        assert!((back.total_overhead_s() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn reports_without_an_objective_field_default_to_time() {
        // Reports written before the objective layer carry no `objective`
        // key; they were all time-scored.
        let rep = AppRunReport {
            app: "sp.B".into(),
            machine: "crill".into(),
            power_cap_w: 55.0,
            strategy: "default".into(),
            objective: Objective::EnergyDelay,
            time_s: 1.0,
            energy_j: 2.0,
            config_change_overhead_s: 0.0,
            instrumentation_overhead_s: 0.0,
            per_region: BTreeMap::new(),
            tuner: None,
            status: RunStatus::Ok,
            faults: FaultRecovery::default(),
        };
        let json = serde_json::to_string(&rep).unwrap();
        let legacy = json.replace("\"objective\":\"edp\",", "");
        assert_ne!(legacy, json, "objective key must have been present");
        let back: AppRunReport = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.objective, Objective::Time);
    }

    #[test]
    fn reports_without_status_or_fault_fields_default_to_clean() {
        // Reports written before the fault substrate carry neither key;
        // they were all clean runs.
        let rep = AppRunReport {
            app: "sp.B".into(),
            machine: "crill".into(),
            power_cap_w: 55.0,
            strategy: "default".into(),
            objective: Objective::Time,
            time_s: 1.0,
            energy_j: 2.0,
            config_change_overhead_s: 0.0,
            instrumentation_overhead_s: 0.0,
            per_region: BTreeMap::new(),
            tuner: None,
            status: RunStatus::Degraded,
            faults: FaultRecovery { rejected: 2, ..Default::default() },
        };
        let json = serde_json::to_string(&rep).unwrap();
        let legacy = json.replace("\"status\":\"Degraded\",", "").replace(
            ",\"faults\":{\"meter_retries\":0,\"hard_faults\":0,\"rejected\":2,\"restarts\":0,\"frozen_regions\":0}",
            "",
        );
        assert_ne!(legacy, json, "status/faults keys must have been present");
        let back: AppRunReport = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.status, RunStatus::Ok);
        assert!(!back.faults.any());
    }

    #[test]
    fn status_renders_lowercase() {
        assert_eq!(RunStatus::Ok.to_string(), "ok");
        assert_eq!(RunStatus::Degraded.to_string(), "degraded");
    }
}
