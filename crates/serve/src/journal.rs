//! The broker's write-ahead journal: crash recovery by deterministic
//! replay.
//!
//! Every externally driven state transition — one [`JobSubmitted`] per
//! accepted submission, one [`BrokerStep`] per discrete-event step — is
//! appended (and flushed) *before* the broker acknowledges it, reusing
//! the schema-v9 trace-event vocabulary. Because the broker is fully
//! deterministic, the journal does not need to snapshot any state:
//! replaying the header plus the op sequence reconstructs the exact
//! broker — same completion set, same virtual clock, and (with trace
//! emission on during replay) a byte-identical trace file.
//!
//! A journal cut off mid-line by a crash is fine: the reader tolerates
//! a truncated final record the same way [`TraceReader`] does for
//! traces, and an op that never finished flushing was by definition
//! never acknowledged.
//!
//! [`JobSubmitted`]: TraceEvent::JobSubmitted
//! [`BrokerStep`]: TraceEvent::BrokerStep

use arcs_metrics::{TraceReadError, TraceReader};
use arcs_trace::{JsonlSink, TraceEvent, TraceRecord, TraceSink};
use std::fs::File;
use std::io;
use std::path::Path;

/// Append-only journal writer. Unlike a plain [`JsonlSink`], every
/// append flushes — the journal is the durability story, not a
/// narrative stream, and broker emission points are coarse enough that
/// per-record flushes cost nothing that matters.
pub struct BrokerJournal {
    sink: JsonlSink<File>,
}

impl BrokerJournal {
    /// Create (truncate) the journal at `path`.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(BrokerJournal { sink: JsonlSink::create(path)? })
    }

    /// Append one record and flush it to the OS before returning. A
    /// failing flush is absorbed (the sink latches its first error for
    /// [`last_error`](BrokerJournal::last_error)) — the broker must not
    /// die because its journal disk did.
    pub fn append(&self, t_s: f64, event: TraceEvent) {
        self.sink.record(Some(t_s), event);
        let _ = self.sink.flush();
    }

    /// The first write error the underlying sink absorbed, if any.
    pub fn last_error(&self) -> Option<String> {
        self.sink.last_error()
    }
}

/// Why a journal could not be loaded.
#[derive(Debug)]
pub enum JournalError {
    /// The file could not be opened.
    Open(io::Error),
    /// A record mid-stream was unreadable (truncated *final* lines are
    /// tolerated; torn bytes in the middle are not).
    Read(TraceReadError),
    /// The journal does not start with a `BrokerConfigured` header, or
    /// the header is not reconstructible (unknown machine model, bad
    /// embedded options blob).
    Header(String),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Open(e) => write!(f, "cannot open journal: {e}"),
            JournalError::Read(e) => write!(f, "cannot read journal: {e}"),
            JournalError::Header(msg) => write!(f, "bad journal header: {msg}"),
        }
    }
}

impl std::error::Error for JournalError {}

/// Load every intact record from a journal file, tolerating a final
/// record torn by a crash mid-write (it was never acknowledged, so
/// dropping it is the correct recovery).
pub fn load_journal(path: &Path) -> Result<Vec<TraceRecord>, JournalError> {
    let reader = TraceReader::open(path).map_err(JournalError::Open)?;
    let mut records = Vec::new();
    for rec in reader {
        records.push(rec.map_err(JournalError::Read)?);
    }
    Ok(records)
}
