//! The broker's live telemetry plane: one serializable snapshot type
//! shared by the `stats`/`watch` protocol ops, `arcs-serve-top`, and the
//! trace-replay reconstruction.
//!
//! A [`TelemetrySnapshot`] is everything a dashboard frame needs: global
//! budget utilisation, per-tenant SLO digests (queue wait, turnaround),
//! per-tenant allocation vs fair share, and a rolling pane of recent
//! events. The live broker builds it from its own state; the
//! [`TraceTelemetry`] builder reconstructs the same shape from a broker
//! trace (schema v5+), so `arcs-serve-top --replay` is a pure function of
//! the trace file — deterministic, byte-identical across runs.
//!
//! Serialization notes: the vendored serde writes fields in declaration
//! order and `BTreeMap`s sorted by key, so `serde_json::to_string` of a
//! snapshot is deterministic given equal contents.

use arcs_metrics::{Histogram, HistogramSummary};
use arcs_trace::{TraceEvent, TraceRecord};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// How many event lines a snapshot's rolling pane keeps.
pub const EVENT_PANE: usize = 64;

/// A compact distribution digest — the SLO view of a histogram. Units
/// follow the source series (seconds for waits, watts for churn).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Digest {
    pub count: u64,
    pub mean: f64,
    pub p50: f64,
    pub p99: f64,
    pub max: f64,
}

impl From<&HistogramSummary> for Digest {
    fn from(s: &HistogramSummary) -> Self {
        Digest { count: s.count, mean: s.mean, p50: s.p50, p99: s.p99, max: s.max }
    }
}

impl From<&Histogram> for Digest {
    fn from(h: &Histogram) -> Self {
        Digest::from(&h.summary())
    }
}

/// One tenant's row in the dashboard.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TenantTelemetry {
    /// Fair-share weight (first submission wins; 1 when unknown).
    pub weight: f64,
    pub queued: u64,
    pub running: u64,
    pub completed: u64,
    /// Jobs that finished `Degraded` plus running jobs currently
    /// degraded (replay only sees the former).
    pub degraded: u64,
    pub rejected: u64,
    /// Jobs that failed terminally: retry budget exhausted or stranded
    /// (v9).
    #[serde(default)]
    pub failed: u64,
    /// Jobs turned away by load shedding at admission (v9).
    #[serde(default)]
    pub shed: u64,
    /// Requeue events charged to this tenant's jobs (v9).
    #[serde(default)]
    pub requeued: u64,
    /// Node-level watts currently allocated to this tenant's jobs.
    pub alloc_w: f64,
    /// The tenant's weighted fair share of the budget across tenants
    /// with running jobs (0 when idle) — the dashboard's "vs fair
    /// share" reference line.
    pub fair_share_w: f64,
    /// Submission → placement, virtual seconds.
    pub queue_wait: Digest,
    /// Submission → completion, virtual seconds.
    pub turnaround: Digest,
}

/// One dashboard frame. See the module docs for determinism notes.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Virtual time of the frame, seconds.
    pub now_s: f64,
    pub budget_w: f64,
    /// Σ node-level allocations across running jobs. The conservation
    /// invariant: `allocated_w ≤ budget_w` in every frame.
    pub allocated_w: f64,
    pub submitted: u64,
    pub queued: u64,
    pub running: u64,
    pub completed: u64,
    pub rejected: u64,
    pub degraded: u64,
    /// Terminal failures (retry budget exhausted / stranded, v9).
    #[serde(default)]
    pub failed: u64,
    /// Jobs shed at admission (v9).
    #[serde(default)]
    pub shed: u64,
    /// Requeue events so far (v9).
    #[serde(default)]
    pub requeued: u64,
    /// Nodes currently out of service — down or draining (v9).
    #[serde(default)]
    pub nodes_down: u64,
    /// Global submission → placement digest, virtual seconds.
    pub queue_wait: Digest,
    /// Global submission → completion digest, virtual seconds.
    pub turnaround: Digest,
    /// Watts moved per reallocation (Σ |Δ allocation| over jobs).
    pub realloc_churn_w: Digest,
    pub tenants: BTreeMap<String, TenantTelemetry>,
    /// The most recent [`EVENT_PANE`] event lines, oldest first.
    pub events: Vec<String>,
}

impl TelemetrySnapshot {
    /// Fill every tenant's `fair_share_w` from the budget and the
    /// weights of tenants with running jobs.
    pub fn compute_fair_shares(&mut self) {
        let active: f64 =
            self.tenants.values().filter(|t| t.running > 0).map(|t| t.weight.max(0.0)).sum();
        for t in self.tenants.values_mut() {
            t.fair_share_w = if t.running > 0 && active > 0.0 {
                self.budget_w * t.weight.max(0.0) / active
            } else {
                0.0
            };
        }
    }

    /// Budget utilisation in `[0, 1]` (0 when the budget is 0).
    pub fn utilization(&self) -> f64 {
        if self.budget_w > 0.0 {
            (self.allocated_w / self.budget_w).clamp(0.0, 1.0)
        } else {
            0.0
        }
    }
}

/// Format one event-pane line. Both the live broker and the replay
/// builder narrate through these helpers so the two panes read the same.
pub fn event_line(t_s: f64, text: impl std::fmt::Display) -> String {
    format!("[{t_s:9.3}s] {text}")
}

pub fn fmt_submitted(job: u64, tenant: &str, workload: &str) -> String {
    format!("job {job} ({tenant}) submitted {workload}")
}

pub fn fmt_rejected(job: u64, tenant: &str, reason: &str) -> String {
    format!("job {job} ({tenant}) rejected: {reason}")
}

pub fn fmt_scheduled(job: u64, tenant: &str, node: u64, cap_w: f64) -> String {
    format!("job {job} ({tenant}) scheduled on node {node} @ {cap_w:.2} W")
}

pub fn fmt_realloc(reason: &str, total_w: f64, budget_w: f64, jobs: usize) -> String {
    format!("reallocated ({reason}): {total_w:.2} / {budget_w:.2} W over {jobs} job(s)")
}

pub fn fmt_completed(job: u64, tenant: &str, status: &str, time_s: f64) -> String {
    format!("job {job} ({tenant}) completed {status} in {time_s:.3}s")
}

pub fn fmt_requeued(job: u64, tenant: &str, node: u64, backoff_s: f64) -> String {
    format!("job {job} ({tenant}) requeued off node {node} (backoff {backoff_s:.3}s)")
}

pub fn fmt_failed(job: u64, tenant: &str, reason: &str) -> String {
    format!("job {job} ({tenant}) failed: {reason}")
}

pub fn fmt_shed(job: u64, tenant: &str, queue_depth: u64) -> String {
    format!("job {job} ({tenant}) shed: queue full at depth {queue_depth}")
}

pub fn fmt_node_failed(node: u64, class: &str, permanent: bool, victim: Option<u64>) -> String {
    let perm = if permanent { " permanently" } else { "" };
    match victim {
        Some(job) => format!("node {node} {class}ed{perm} (victim job {job})"),
        None => format!("node {node} {class}ed{perm} (idle)"),
    }
}

pub fn fmt_node_recovered(node: u64, down_s: f64) -> String {
    format!("node {node} recovered after {down_s:.3}s down")
}

/// Push onto a rolling event pane, keeping the last [`EVENT_PANE`] lines.
pub fn push_event(pane: &mut VecDeque<String>, line: String) {
    if pane.len() == EVENT_PANE {
        pane.pop_front();
    }
    pane.push_back(line);
}

/// Per-tenant accumulation shared by nothing but this builder — the
/// histograms give the same log-bucket quantile estimates the live
/// broker's registry computes.
#[derive(Default)]
struct TenantAccum {
    weight: f64,
    completed: u64,
    degraded: u64,
    rejected: u64,
    failed: u64,
    shed: u64,
    requeued: u64,
    wait: Histogram,
    turnaround: Histogram,
}

/// Reconstructs [`TelemetrySnapshot`]s from a broker trace (schema v5+:
/// `JobSubmitted` … `CapReallocated` events). Feed it records in order
/// via [`consume`](TraceTelemetry::consume), then take
/// [`snapshot`](TraceTelemetry::snapshot) at any point — `arcs-serve-top
/// --replay` takes one at end of trace.
///
/// Pre-v7 traces carry no tenant weight on `JobSubmitted` (the field
/// defaults to 0); the builder maps that to the broker's default of 1.
#[derive(Default)]
pub struct TraceTelemetry {
    now_s: f64,
    budget_w: f64,
    submitted: u64,
    rejected: u64,
    completed: u64,
    degraded: u64,
    failed: u64,
    shed: u64,
    requeued: u64,
    job_tenant: BTreeMap<u64, String>,
    job_submit_s: BTreeMap<u64, f64>,
    queued: BTreeSet<u64>,
    /// Jobs seen requeued at least once: their later placements record
    /// no queue-wait sample (the live broker applies the same rule).
    requeued_jobs: BTreeSet<u64>,
    /// Nodes currently out of service (down or draining).
    down: BTreeSet<u64>,
    /// Running job → current node-level allocation.
    running: BTreeMap<u64, f64>,
    tenants: BTreeMap<String, TenantAccum>,
    wait: Histogram,
    turnaround: Histogram,
    churn: Histogram,
    events: VecDeque<String>,
}

impl TraceTelemetry {
    pub fn new() -> Self {
        TraceTelemetry::default()
    }

    fn tenant(&mut self, name: &str) -> &mut TenantAccum {
        if !self.tenants.contains_key(name) {
            self.tenants.insert(name.to_string(), TenantAccum::default());
        }
        self.tenants.get_mut(name).expect("just ensured")
    }

    pub fn consume(&mut self, rec: &TraceRecord) {
        let t = rec.t_s.unwrap_or(self.now_s);
        self.now_s = self.now_s.max(t);
        match &rec.event {
            TraceEvent::JobSubmitted { job, tenant, workload, weight, .. } => {
                self.submitted += 1;
                self.queued.insert(*job);
                self.job_tenant.insert(*job, tenant.clone());
                self.job_submit_s.insert(*job, t);
                let weight = if *weight > 0.0 { *weight } else { 1.0 };
                let acc = self.tenant(tenant);
                if acc.weight == 0.0 {
                    acc.weight = weight;
                }
                push_event(&mut self.events, event_line(t, fmt_submitted(*job, tenant, workload)));
            }
            TraceEvent::JobRejected { job, tenant, reason, .. } => {
                self.rejected += 1;
                self.queued.remove(job);
                self.job_submit_s.remove(job);
                self.tenant(tenant).rejected += 1;
                push_event(&mut self.events, event_line(t, fmt_rejected(*job, tenant, reason)));
            }
            TraceEvent::JobScheduled { job, tenant, node, cap_w } => {
                self.queued.remove(job);
                self.running.insert(*job, *cap_w);
                if !self.requeued_jobs.contains(job) {
                    if let Some(&at) = self.job_submit_s.get(job) {
                        let wait = (t - at).max(0.0);
                        self.wait.record(wait);
                        self.tenant(tenant).wait.record(wait);
                    }
                }
                push_event(
                    &mut self.events,
                    event_line(t, fmt_scheduled(*job, tenant, *node, *cap_w)),
                );
            }
            TraceEvent::CapReallocated { reason, budget_w, total_w, allocations } => {
                self.budget_w = *budget_w;
                let mut moved = 0.0;
                for a in allocations {
                    let old = self.running.get(&a.job).copied().unwrap_or(0.0);
                    moved += (a.cap_w - old).abs();
                    self.running.insert(a.job, a.cap_w);
                }
                self.churn.record(moved);
                push_event(
                    &mut self.events,
                    event_line(t, fmt_realloc(reason, *total_w, *budget_w, allocations.len())),
                );
            }
            TraceEvent::JobCompleted { job, tenant, status, time_s, .. } => {
                self.completed += 1;
                self.running.remove(job);
                if status == "degraded" {
                    self.degraded += 1;
                    self.tenant(tenant).degraded += 1;
                }
                if let Some(at) = self.job_submit_s.remove(job) {
                    let turn = (t - at).max(0.0);
                    self.turnaround.record(turn);
                    self.tenant(tenant).turnaround.record(turn);
                }
                self.tenant(tenant).completed += 1;
                push_event(
                    &mut self.events,
                    event_line(t, fmt_completed(*job, tenant, status, *time_s)),
                );
            }
            TraceEvent::JobRequeued { job, tenant, node, backoff_s, .. } => {
                self.requeued += 1;
                self.requeued_jobs.insert(*job);
                self.running.remove(job);
                self.queued.insert(*job);
                self.tenant(tenant).requeued += 1;
                push_event(
                    &mut self.events,
                    event_line(t, fmt_requeued(*job, tenant, *node, *backoff_s)),
                );
            }
            TraceEvent::JobFailed { job, tenant, reason, .. } => {
                self.failed += 1;
                self.queued.remove(job);
                self.running.remove(job);
                self.job_submit_s.remove(job);
                self.tenant(tenant).failed += 1;
                push_event(&mut self.events, event_line(t, fmt_failed(*job, tenant, reason)));
            }
            TraceEvent::JobShed { job, tenant, queue_depth, .. } => {
                self.shed += 1;
                self.queued.remove(job);
                self.job_submit_s.remove(job);
                self.tenant(tenant).shed += 1;
                push_event(&mut self.events, event_line(t, fmt_shed(*job, tenant, *queue_depth)));
            }
            TraceEvent::NodeFailed { node, class, permanent, victim } => {
                self.down.insert(*node);
                push_event(
                    &mut self.events,
                    event_line(t, fmt_node_failed(*node, class, *permanent, *victim)),
                );
            }
            TraceEvent::NodeRecovered { node, down_s } => {
                self.down.remove(node);
                push_event(&mut self.events, event_line(t, fmt_node_recovered(*node, *down_s)));
            }
            _ => {}
        }
    }

    /// The reconstructed frame at the current point in the trace.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut tenants: BTreeMap<String, TenantTelemetry> = BTreeMap::new();
        for (name, acc) in &self.tenants {
            tenants.insert(
                name.clone(),
                TenantTelemetry {
                    weight: if acc.weight > 0.0 { acc.weight } else { 1.0 },
                    queued: 0,
                    running: 0,
                    completed: acc.completed,
                    degraded: acc.degraded,
                    rejected: acc.rejected,
                    failed: acc.failed,
                    shed: acc.shed,
                    requeued: acc.requeued,
                    alloc_w: 0.0,
                    fair_share_w: 0.0,
                    queue_wait: Digest::from(&acc.wait),
                    turnaround: Digest::from(&acc.turnaround),
                },
            );
        }
        for job in &self.queued {
            if let Some(tenant) = self.job_tenant.get(job) {
                if let Some(t) = tenants.get_mut(tenant) {
                    t.queued += 1;
                }
            }
        }
        for (job, &alloc) in &self.running {
            if let Some(tenant) = self.job_tenant.get(job) {
                if let Some(t) = tenants.get_mut(tenant) {
                    t.running += 1;
                    t.alloc_w += alloc;
                }
            }
        }
        let mut snap = TelemetrySnapshot {
            now_s: self.now_s,
            budget_w: self.budget_w,
            // `+ 0.0` turns the empty sum's `-0.0` into plain `0`.
            allocated_w: self.running.values().sum::<f64>() + 0.0,
            submitted: self.submitted,
            queued: self.queued.len() as u64,
            running: self.running.len() as u64,
            completed: self.completed,
            rejected: self.rejected,
            degraded: self.degraded,
            failed: self.failed,
            shed: self.shed,
            requeued: self.requeued,
            nodes_down: self.down.len() as u64,
            queue_wait: Digest::from(&self.wait),
            turnaround: Digest::from(&self.turnaround),
            realloc_churn_w: Digest::from(&self.churn),
            tenants,
            events: self.events.iter().cloned().collect(),
        };
        snap.compute_fair_shares();
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arcs_trace::JobAllocation;

    fn rec(seq: u64, t_s: f64, event: TraceEvent) -> TraceRecord {
        TraceRecord { schema: arcs_trace::SCHEMA_VERSION, seq, t_s: Some(t_s), event }
    }

    #[test]
    fn replay_reconstructs_waits_allocations_and_fair_shares() {
        let mut tt = TraceTelemetry::new();
        let events = vec![
            rec(
                0,
                0.0,
                TraceEvent::JobSubmitted {
                    job: 0,
                    tenant: "acme".into(),
                    workload: "sp.S".into(),
                    floor_w: 57.5,
                    weight: 2.0,
                    timesteps: 0,
                    fault_seed: None,
                    requested_floor_w: None,
                },
            ),
            rec(
                1,
                0.0,
                TraceEvent::JobSubmitted {
                    job: 1,
                    tenant: "umbrella".into(),
                    workload: "sp.S".into(),
                    floor_w: 57.5,
                    weight: 0.0, // pre-v7 trace: unknown weight reads as 1
                    timesteps: 0,
                    fault_seed: None,
                    requested_floor_w: None,
                },
            ),
            rec(
                2,
                0.0,
                TraceEvent::JobScheduled { job: 0, tenant: "acme".into(), node: 0, cap_w: 57.5 },
            ),
            rec(
                3,
                0.0,
                TraceEvent::CapReallocated {
                    reason: "scheduled".into(),
                    budget_w: 300.0,
                    total_w: 230.0,
                    allocations: vec![JobAllocation { job: 0, node: 0, cap_w: 230.0 }],
                },
            ),
            rec(
                4,
                2.5,
                TraceEvent::JobScheduled {
                    job: 1,
                    tenant: "umbrella".into(),
                    node: 1,
                    cap_w: 57.5,
                },
            ),
            rec(
                5,
                2.5,
                TraceEvent::CapReallocated {
                    reason: "scheduled".into(),
                    budget_w: 300.0,
                    total_w: 297.5,
                    allocations: vec![
                        JobAllocation { job: 0, node: 0, cap_w: 180.0 },
                        JobAllocation { job: 1, node: 1, cap_w: 117.5 },
                    ],
                },
            ),
            rec(
                6,
                9.0,
                TraceEvent::JobCompleted {
                    job: 0,
                    tenant: "acme".into(),
                    node: 0,
                    status: "ok".into(),
                    time_s: 9.0,
                    energy_j: 800.0,
                },
            ),
        ];
        for e in &events {
            tt.consume(e);
        }
        let snap = tt.snapshot();
        assert_eq!((snap.submitted, snap.running, snap.completed), (2, 1, 1));
        assert_eq!(snap.budget_w, 300.0);
        assert_eq!(snap.allocated_w, 117.5);
        assert!(snap.allocated_w <= snap.budget_w);
        // Job 1 waited 2.5 virtual seconds; job 0 was placed instantly.
        assert_eq!(snap.queue_wait.count, 2);
        assert!(snap.queue_wait.max >= 2.5 / 2f64.powf(1.0 / 8.0));
        assert_eq!(snap.turnaround.count, 1);
        // Churn: 57.5→230 (+172.5), then |180−230| + |117.5−57.5| = 110.
        assert_eq!(snap.realloc_churn_w.count, 2);
        let acme = &snap.tenants["acme"];
        let umbrella = &snap.tenants["umbrella"];
        assert_eq!(acme.weight, 2.0);
        assert_eq!(umbrella.weight, 1.0, "weight 0 in old traces reads as 1");
        assert_eq!(acme.completed, 1);
        assert_eq!(umbrella.running, 1);
        assert_eq!(umbrella.alloc_w, 117.5);
        // Only umbrella is running, so it owns the whole fair share.
        assert_eq!(umbrella.fair_share_w, 300.0);
        assert_eq!(acme.fair_share_w, 0.0);
        assert!(snap.events.iter().any(|l| l.contains("completed ok")));

        // Replay is a pure function: same records, byte-identical frame.
        let mut again = TraceTelemetry::new();
        for e in &events {
            again.consume(e);
        }
        assert_eq!(
            serde_json::to_string(&snap).unwrap(),
            serde_json::to_string(&again.snapshot()).unwrap()
        );
    }

    #[test]
    fn event_pane_is_bounded() {
        let mut pane = VecDeque::new();
        for i in 0..(EVENT_PANE + 10) {
            push_event(&mut pane, format!("line {i}"));
        }
        assert_eq!(pane.len(), EVENT_PANE);
        assert_eq!(pane.front().unwrap(), "line 10");
    }
}
