//! The broker's wire protocol: newline-delimited JSON over TCP.
//!
//! One request per line, one response line back, connection stays open
//! for pipelining. Requests carry a flat `op` discriminator plus
//! whichever fields that op needs (the vendored serde has no adjacent
//! tagging, and a flat shape keeps hand-written clients — `nc`, shell
//! scripts — honest anyway).
//!
//! Ops:
//!
//! | op         | fields in                                         | fields out                          |
//! |------------|---------------------------------------------------|-------------------------------------|
//! | `submit`   | `tenant`, `workload`, `timesteps?`, `floor_w?`, `weight?`, `fault_seed?` | `job`, `accepted`, `reason?`; on shed also `retry_after_s`, `queue_depth` |
//! | `status`   | `job`                                             | `state`, completion detail          |
//! | `stats`    | —                                                 | `stats` counters + `telemetry` snapshot |
//! | `metrics`  | —                                                 | `metrics`: Prometheus text exposition |
//! | `watch`    | `every?` (virtual-time quanta, default 1)         | stream: one NDJSON telemetry snapshot line per interval (no `Response` wrapper) |
//! | `shutdown` | —                                                 | ack; server drains and exits        |
//!
//! `watch` is the one op that changes the framing contract: after the
//! request line the server stops speaking `Response` and pushes raw
//! [`TelemetrySnapshot`] lines until the client hangs up or the server
//! drains. Everything else stays strict request/response.

use crate::broker::BrokerCounters;
use crate::job::JobSpec;
use crate::telemetry::TelemetrySnapshot;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    pub op: String,
    #[serde(default)]
    pub tenant: Option<String>,
    #[serde(default)]
    pub workload: Option<String>,
    #[serde(default)]
    pub timesteps: Option<usize>,
    #[serde(default)]
    pub floor_w: Option<f64>,
    #[serde(default)]
    pub weight: Option<f64>,
    #[serde(default)]
    pub fault_seed: Option<u64>,
    /// Target job id for `status`.
    #[serde(default)]
    pub job: Option<u64>,
    /// `watch`: push a snapshot every N virtual-time quanta (default 1).
    #[serde(default)]
    pub every: Option<u64>,
}

impl Request {
    pub fn submit(spec: &JobSpec) -> Self {
        Request {
            op: "submit".into(),
            tenant: Some(spec.tenant.clone()),
            workload: Some(spec.workload.clone()),
            timesteps: (spec.timesteps > 0).then_some(spec.timesteps),
            floor_w: spec.floor_w,
            weight: (spec.weight > 0.0 && spec.weight != 1.0).then_some(spec.weight),
            fault_seed: spec.fault_seed,
            job: None,
            every: None,
        }
    }

    pub fn status(job: u64) -> Self {
        Request { job: Some(job), ..Request::op_only("status") }
    }

    pub fn op_only(op: &str) -> Self {
        Request {
            op: op.into(),
            tenant: None,
            workload: None,
            timesteps: None,
            floor_w: None,
            weight: None,
            fault_seed: None,
            job: None,
            every: None,
        }
    }

    /// Build the broker-side job spec from a `submit` request. `None`
    /// when required fields are missing.
    pub fn to_spec(&self) -> Option<JobSpec> {
        let mut spec = JobSpec::new(self.tenant.clone()?, self.workload.clone()?);
        spec.timesteps = self.timesteps.unwrap_or(0);
        spec.floor_w = self.floor_w;
        spec.weight = self.weight.unwrap_or(1.0);
        spec.fault_seed = self.fault_seed;
        Some(spec)
    }
}

/// Wire mirror of [`BrokerCounters`] (kept separate so the core type
/// never grows serde obligations it doesn't need).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StatsBody {
    pub submitted: u64,
    pub queued: u64,
    pub running: u64,
    pub completed: u64,
    pub rejected: u64,
    pub degraded: u64,
    /// Terminal failures — retry budget exhausted or stranded (v9).
    #[serde(default)]
    pub failed: u64,
    /// Jobs shed at admission by the bounded queue (v9).
    #[serde(default)]
    pub shed: u64,
    /// Requeue events so far (v9).
    #[serde(default)]
    pub requeued: u64,
    /// Nodes currently out of service (v9).
    #[serde(default)]
    pub nodes_down: u64,
    pub budget_w: f64,
    pub now_s: f64,
}

impl StatsBody {
    pub fn from_counters(c: BrokerCounters, budget_w: f64, now_s: f64) -> Self {
        StatsBody {
            submitted: c.submitted,
            queued: c.queued,
            running: c.running,
            completed: c.completed,
            rejected: c.rejected,
            degraded: c.degraded,
            failed: c.failed,
            shed: c.shed,
            requeued: c.requeued,
            nodes_down: c.nodes_down,
            budget_w,
            now_s,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    pub ok: bool,
    #[serde(default)]
    pub error: Option<String>,
    /// `submit`: the assigned job id (also set on rejection).
    #[serde(default)]
    pub job: Option<u64>,
    /// `submit`: whether admission control let the job in.
    #[serde(default)]
    pub accepted: Option<bool>,
    /// `submit` rejection or shed reason.
    #[serde(default)]
    pub reason: Option<String>,
    /// `submit` under load shedding: backpressure hint — virtual
    /// seconds before resubmitting has any chance (v9).
    #[serde(default)]
    pub retry_after_s: Option<f64>,
    /// `submit` under load shedding: admission-queue depth at the
    /// moment the job was turned away (v9).
    #[serde(default)]
    pub queue_depth: Option<u64>,
    /// `status`: `queued` / `running` / `completed` / `rejected` /
    /// `failed` / `shed`.
    #[serde(default)]
    pub state: Option<String>,
    /// `status` of a completed job: `ok` / `degraded`.
    #[serde(default)]
    pub status: Option<String>,
    #[serde(default)]
    pub time_s: Option<f64>,
    #[serde(default)]
    pub energy_j: Option<f64>,
    #[serde(default)]
    pub stats: Option<StatsBody>,
    /// `stats`: one telemetry snapshot taken at the same instant as the
    /// counters, so the two cannot disagree about queue depths.
    #[serde(default)]
    pub telemetry: Option<TelemetrySnapshot>,
    /// `metrics`: the full registry in Prometheus text exposition format.
    #[serde(default)]
    pub metrics: Option<String>,
}

impl Response {
    pub fn empty_ok() -> Self {
        Response {
            ok: true,
            error: None,
            job: None,
            accepted: None,
            reason: None,
            retry_after_s: None,
            queue_depth: None,
            state: None,
            status: None,
            time_s: None,
            energy_j: None,
            stats: None,
            telemetry: None,
            metrics: None,
        }
    }

    pub fn err(message: impl Into<String>) -> Self {
        Response { ok: false, error: Some(message.into()), ..Response::empty_ok() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_request_round_trips_and_rebuilds_the_spec() {
        let spec = JobSpec::new("acme", "sp.W").timesteps(6).floor_w(80.0).weight(2.0);
        let req = Request::submit(&spec);
        let line = serde_json::to_string(&req).unwrap();
        let back: Request = serde_json::from_str(&line).unwrap();
        assert_eq!(back, req);
        assert_eq!(back.to_spec().unwrap(), spec);

        // Hand-written minimal submit: optional fields default sanely.
        let minimal: Request =
            serde_json::from_str(r#"{"op":"submit","tenant":"t0","workload":"cg.S"}"#).unwrap();
        let spec = minimal.to_spec().unwrap();
        assert_eq!(spec.timesteps, 0);
        assert_eq!(spec.weight, 1.0);
        assert_eq!(spec.floor_w, None);

        // A submit with no tenant cannot build a spec.
        assert!(Request::op_only("submit").to_spec().is_none());
    }

    #[test]
    fn responses_round_trip_with_sparse_fields() {
        let mut resp = Response::empty_ok();
        resp.job = Some(7);
        resp.accepted = Some(false);
        resp.reason = Some("floor cap exceeds the global budget".into());
        let line = serde_json::to_string(&resp).unwrap();
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(back, resp);

        let err: Response = serde_json::from_str(r#"{"ok":false,"error":"bad op"}"#).unwrap();
        assert!(!err.ok);
        assert_eq!(err.error.as_deref(), Some("bad op"));
        assert_eq!(err.stats, None);
    }
}
