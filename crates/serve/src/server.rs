//! The long-running broker service.
//!
//! One dedicated thread owns the [`Broker`] (it is single-threaded by
//! design — determinism falls out of the total order of commands) and
//! drains a command channel; between commands it advances the broker's
//! virtual clock one quantum event at a time, so arrivals always
//! preempt simulated work at an event boundary. Connections are framed
//! NDJSON (see [`crate::protocol`]) served on a [`ThreadPool`].

use crate::broker::{Broker, CompletedJob, SubmitOutcome};
use crate::job::{JobSpec, JobState};
use crate::pool::{PoolMetrics, ThreadPool};
use crate::protocol::{Request, Response, StatsBody};
use crate::telemetry::TelemetrySnapshot;
use arcs_metrics::MetricsRegistry;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;

enum Command {
    Submit(JobSpec, Sender<SubmitOutcome>),
    Status(u64, Sender<(Option<JobState>, Option<CompletedJob>, Option<String>)>),
    /// Counters and a telemetry snapshot taken at the same broker
    /// instant, so they can never disagree about queue depths.
    Stats(Sender<(StatsBody, TelemetrySnapshot)>),
    /// Subscribe to a snapshot push every N virtual-time quanta.
    Watch(Sender<TelemetrySnapshot>, u64),
    /// Drain every admitted job, then acknowledge and stop.
    Shutdown(Sender<()>),
}

fn broker_loop(mut broker: Broker, rx: Receiver<Command>) {
    loop {
        // While quantum events are pending, poll for commands so new
        // arrivals land between events; otherwise block until one comes.
        let cmd = if broker.has_pending_events() {
            match rx.try_recv() {
                Ok(cmd) => Some(cmd),
                Err(TryRecvError::Empty) => None,
                Err(TryRecvError::Disconnected) => return,
            }
        } else {
            match rx.recv() {
                Ok(cmd) => Some(cmd),
                Err(_) => return,
            }
        };
        match cmd {
            Some(Command::Submit(spec, reply)) => {
                let _ = reply.send(broker.submit(spec));
            }
            Some(Command::Status(job, reply)) => {
                let state = broker.job_state(job);
                let done = broker.completed_jobs().get(&job).cloned();
                let reason = broker.rejection_reason(job).map(str::to_string);
                let _ = reply.send((state, done, reason));
            }
            Some(Command::Stats(reply)) => {
                let body =
                    StatsBody::from_counters(broker.counters(), broker.budget_w(), broker.now_s());
                let _ = reply.send((body, broker.telemetry()));
            }
            Some(Command::Watch(tx, every)) => {
                broker.watch(every, tx);
            }
            Some(Command::Shutdown(reply)) => {
                broker.run_until_idle();
                let _ = reply.send(());
                return;
            }
            None => {
                broker.step();
            }
        }
    }
}

fn handle_request(
    req: &Request,
    cmds: &Sender<Command>,
    stopping: &AtomicBool,
    registry: &MetricsRegistry,
) -> Response {
    let mut resp = Response::empty_ok();
    match req.op.as_str() {
        "submit" => {
            let Some(spec) = req.to_spec() else {
                return Response::err("submit requires tenant and workload");
            };
            let (tx, rx) = std::sync::mpsc::channel();
            if cmds.send(Command::Submit(spec, tx)).is_err() {
                return Response::err("broker is shut down");
            }
            match rx.recv() {
                Ok(SubmitOutcome::Admitted(job)) => {
                    resp.job = Some(job);
                    resp.accepted = Some(true);
                }
                Ok(SubmitOutcome::Rejected { job, reason }) => {
                    resp.job = Some(job);
                    resp.accepted = Some(false);
                    resp.reason = Some(reason);
                }
                Ok(SubmitOutcome::Shed { job, reason, retry_after_s, queue_depth }) => {
                    resp.job = Some(job);
                    resp.accepted = Some(false);
                    resp.reason = Some(reason);
                    resp.retry_after_s = Some(retry_after_s);
                    resp.queue_depth = Some(queue_depth);
                }
                Err(_) => return Response::err("broker is shut down"),
            }
        }
        "status" => {
            let Some(job) = req.job else {
                return Response::err("status requires a job id");
            };
            let (tx, rx) = std::sync::mpsc::channel();
            if cmds.send(Command::Status(job, tx)).is_err() {
                return Response::err("broker is shut down");
            }
            match rx.recv() {
                Ok((state, done, reason)) => {
                    let Some(state) = state else {
                        return Response::err(format!("unknown job {job}"));
                    };
                    resp.job = Some(job);
                    resp.state = Some(state.to_string());
                    resp.reason = reason;
                    if let Some(done) = done {
                        resp.status = Some(done.status.to_string());
                        resp.time_s = Some(done.time_s);
                        resp.energy_j = Some(done.energy_j);
                    }
                }
                Err(_) => return Response::err("broker is shut down"),
            }
        }
        "stats" => {
            let (tx, rx) = std::sync::mpsc::channel();
            if cmds.send(Command::Stats(tx)).is_err() {
                return Response::err("broker is shut down");
            }
            match rx.recv() {
                Ok((stats, telemetry)) => {
                    resp.stats = Some(stats);
                    resp.telemetry = Some(telemetry);
                }
                Err(_) => return Response::err("broker is shut down"),
            }
        }
        // Rendered straight from the shared registry — no broker
        // roundtrip, so scrapes stay cheap even mid-quantum.
        "metrics" => resp.metrics = Some(registry.snapshot().to_prometheus()),
        "shutdown" => {
            let (tx, rx) = std::sync::mpsc::channel();
            if cmds.send(Command::Shutdown(tx)).is_ok() {
                // The ack arrives only after the broker drained all
                // admitted jobs, so a client that waits for this
                // response knows its work is done and traced.
                let _ = rx.recv();
            }
            stopping.store(true, Ordering::SeqCst);
        }
        other => return Response::err(format!("unknown op {other:?}")),
    }
    resp
}

/// Stream telemetry snapshots to one `watch` subscriber as raw NDJSON
/// lines. Returns when the client hangs up, the broker goes away, or
/// the server starts stopping.
fn stream_watch(writer: &mut TcpStream, cmds: &Sender<Command>, stopping: &AtomicBool, every: u64) {
    let (tx, rx) = std::sync::mpsc::channel();
    if cmds.send(Command::Watch(tx, every)).is_err() {
        return;
    }
    loop {
        if stopping.load(Ordering::SeqCst) {
            return;
        }
        match rx.recv_timeout(std::time::Duration::from_millis(200)) {
            Ok(snap) => {
                let mut line = serde_json::to_string(&snap).expect("snapshots always serialize");
                line.push('\n');
                if writer.write_all(line.as_bytes()).is_err() || writer.flush().is_err() {
                    // Dropping `rx` makes the broker's next push fail,
                    // which unsubscribes this watcher.
                    return;
                }
            }
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Longest request line the server will buffer. Every legitimate op
/// fits in a few hundred bytes; anything near this bound is a broken or
/// hostile client, and an unbounded `read_until` would let one
/// connection grow the buffer without limit.
pub const MAX_LINE_BYTES: usize = 256 * 1024;

fn write_response(writer: &mut TcpStream, resp: &Response) -> bool {
    let mut out = serde_json::to_string(resp).expect("responses always serialize");
    out.push('\n');
    writer.write_all(out.as_bytes()).is_ok() && writer.flush().is_ok()
}

fn serve_connection(
    stream: TcpStream,
    cmds: Sender<Command>,
    stopping: Arc<AtomicBool>,
    registry: Arc<MetricsRegistry>,
) {
    // Short read timeouts keep idle keep-alive connections from pinning
    // their pool worker past shutdown — each timeout is a chance to see
    // the stop flag and bow out.
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(200)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    // Persistent byte buffer: a timeout mid-line keeps what was read.
    // Bytes (not `String`) so a line that is not valid UTF-8 becomes a
    // typed error response instead of a dropped connection.
    let mut buf: Vec<u8> = Vec::new();
    loop {
        if stopping.load(Ordering::SeqCst) {
            return;
        }
        // Read at most one byte past the cap: hitting the limit without
        // a newline is the oversized-line signal.
        let budget = (MAX_LINE_BYTES + 1 - buf.len()) as u64;
        match reader.by_ref().take(budget).read_until(b'\n', &mut buf) {
            Ok(0) => return, // client hung up (possibly mid-line)
            Ok(_) => {
                let complete = buf.ends_with(b"\n");
                if buf.len() > MAX_LINE_BYTES {
                    // Resync by discarding to the next newline. The tail
                    // is thrown away chunk by chunk, so memory stays
                    // bounded no matter how long the line runs.
                    let mut synced = complete;
                    while !synced {
                        buf.clear();
                        match reader.by_ref().take(64 * 1024).read_until(b'\n', &mut buf) {
                            Ok(0) => return,
                            Ok(_) => synced = buf.ends_with(b"\n"),
                            Err(err)
                                if err.kind() == std::io::ErrorKind::WouldBlock
                                    || err.kind() == std::io::ErrorKind::TimedOut =>
                            {
                                if stopping.load(Ordering::SeqCst) {
                                    return;
                                }
                            }
                            Err(_) => return,
                        }
                    }
                    buf.clear();
                    let resp =
                        Response::err(format!("bad request: line exceeds {MAX_LINE_BYTES} bytes"));
                    if !write_response(&mut writer, &resp) {
                        return;
                    }
                    continue;
                }
                if !complete {
                    // EOF with a truncated final line: the request was
                    // never finished, so there is nothing to answer.
                    return;
                }
                let resp = match std::str::from_utf8(&buf) {
                    Ok(text) if text.trim().is_empty() => {
                        buf.clear();
                        continue;
                    }
                    Ok(text) => match serde_json::from_str::<Request>(text.trim()) {
                        Ok(req) if req.op == "watch" => {
                            // `watch` flips the connection into push mode:
                            // from here on the server writes raw snapshot
                            // lines, never `Response` frames.
                            let every = req.every.unwrap_or(1).max(1);
                            stream_watch(&mut writer, &cmds, &stopping, every);
                            return;
                        }
                        Ok(req) => handle_request(&req, &cmds, &stopping, &registry),
                        Err(err) => Response::err(format!("bad request: {err}")),
                    },
                    Err(_) => Response::err("bad request: line is not valid UTF-8"),
                };
                if !write_response(&mut writer, &resp) {
                    return;
                }
                buf.clear();
            }
            Err(err)
                if err.kind() == std::io::ErrorKind::WouldBlock
                    || err.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => return,
        }
    }
}

/// A running broker service bound to a TCP address.
pub struct Server;

pub struct ServerHandle {
    addr: std::net::SocketAddr,
    cmds: Sender<Command>,
    stopping: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    broker: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and serve `broker`
    /// until a client sends `shutdown`.
    pub fn start(broker: Broker, addr: &str, pool_threads: usize) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        // The broker thread owns the broker, but the registry is shared:
        // `metrics` scrapes and pool instrumentation read/write it
        // without a broker roundtrip.
        let registry = broker.registry();
        let (cmd_tx, cmd_rx) = std::sync::mpsc::channel();
        let broker_thread = std::thread::Builder::new()
            .name("arcs-serve-broker".into())
            .spawn(move || broker_loop(broker, cmd_rx))
            .expect("spawning the broker thread");

        let stopping = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let stopping = Arc::clone(&stopping);
            let cmd_tx = cmd_tx.clone();
            let registry = Arc::clone(&registry);
            std::thread::Builder::new()
                .name("arcs-serve-acceptor".into())
                .spawn(move || {
                    let pool = ThreadPool::with_metrics(
                        pool_threads,
                        Some(PoolMetrics::resolve(&registry)),
                    );
                    for stream in listener.incoming() {
                        if stopping.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let cmds = cmd_tx.clone();
                        let stopping = Arc::clone(&stopping);
                        let registry = Arc::clone(&registry);
                        pool.execute(move || serve_connection(stream, cmds, stopping, registry));
                    }
                    // Dropping the pool joins in-flight connections;
                    // dropping cmd_tx lets an idle broker loop exit.
                })
                .expect("spawning the acceptor thread")
        };
        Ok(ServerHandle {
            addr: local,
            cmds: cmd_tx,
            stopping,
            acceptor: Some(acceptor),
            broker: Some(broker_thread),
        })
    }
}

impl ServerHandle {
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Block until some client sends `shutdown`, then join the threads.
    pub fn wait(mut self) {
        if let Some(broker) = self.broker.take() {
            let _ = broker.join();
        }
        // The handler that relayed `shutdown` also raises this flag, but
        // possibly after we observed the broker exit — store it here so
        // the wake-up connection below cannot race past a still-false
        // flag and leave the acceptor parked forever.
        self.stopping.store(true, Ordering::SeqCst);
        // Unblock the acceptor if it is still parked in `incoming()`.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }

    /// Ask the server to drain and stop, then join its threads. Goes
    /// straight to the broker's command channel (not over TCP), so it
    /// works even when every pool worker is pinned by an open
    /// connection. Safe to call after a client already sent `shutdown`.
    pub fn shutdown(mut self) {
        let (tx, rx) = std::sync::mpsc::channel();
        if self.cmds.send(Command::Shutdown(tx)).is_ok() {
            // The broker may already be gone (client-initiated
            // shutdown); then the reply channel just closes.
            let _ = rx.recv();
        }
        self.stopping.store(true, Ordering::SeqCst);
        if let Some(broker) = self.broker.take() {
            let _ = broker.join();
        }
        // One last connection unblocks the acceptor if it is still
        // parked in `incoming()` after the stop flag went up.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

/// A minimal blocking NDJSON client over one connection.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        Ok(Client::over(TcpStream::connect(addr)?))
    }

    pub fn over(stream: TcpStream) -> Self {
        let writer = stream.try_clone().expect("cloning a TCP stream");
        Client { writer, reader: BufReader::new(stream) }
    }

    pub fn roundtrip(&mut self, req: &Request) -> std::io::Result<Response> {
        let mut line = serde_json::to_string(req)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut reply = String::new();
        self.reader.read_line(&mut reply)?;
        if reply.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        serde_json::from_str(&reply)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::BrokerConfig;
    use arcs_powersim::{Fleet, Machine};
    use arcs_trace::{NullSink, TraceEvent, VecSink};

    fn test_server(sink: Arc<VecSink>) -> ServerHandle {
        let fleet = Fleet::homogeneous(Machine::crill(), 2);
        let mut cfg = BrokerConfig::new(400.0);
        cfg.quantum_timesteps = 2;
        let broker = Broker::new(fleet, cfg, sink);
        Server::start(broker, "127.0.0.1:0", 2).expect("binding an ephemeral port")
    }

    #[test]
    fn submit_status_stats_shutdown_over_tcp() {
        let sink = Arc::new(VecSink::new());
        let handle = test_server(Arc::clone(&sink));
        let addr = handle.addr().to_string();
        let mut client = Client::connect(&addr).unwrap();

        let spec = JobSpec::new("acme", "sp.S").timesteps(4);
        let resp = client.roundtrip(&Request::submit(&spec)).unwrap();
        assert!(resp.ok);
        assert_eq!(resp.accepted, Some(true));
        let job = resp.job.unwrap();

        let reject = client.roundtrip(&Request::submit(&spec.clone().floor_w(9000.0))).unwrap();
        assert_eq!(reject.accepted, Some(false));
        assert!(reject.reason.unwrap().contains("every node"));

        // A second connection sees the same broker.
        let mut other = Client::connect(&addr).unwrap();
        let stats = other.roundtrip(&Request::op_only("stats")).unwrap().stats.unwrap();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.rejected, 1);
        assert!((stats.budget_w - 400.0).abs() < 1e-9);

        // Shutdown drains the admitted job before acking.
        let bye = other.roundtrip(&Request::op_only("shutdown")).unwrap();
        assert!(bye.ok);
        handle.shutdown();

        let records = sink.drain();
        assert!(records
            .iter()
            .any(|r| matches!(&r.event, TraceEvent::JobCompleted { job: j, .. } if *j == job)));
        assert!(records.iter().any(|r| matches!(r.event, TraceEvent::JobRejected { .. })));
    }

    #[test]
    fn bad_lines_get_errors_not_hangups() {
        let handle = {
            let fleet = Fleet::homogeneous(Machine::crill(), 1);
            let broker = Broker::new(fleet, BrokerConfig::new(230.0), Arc::new(NullSink));
            Server::start(broker, "127.0.0.1:0", 1).unwrap()
        };
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut client = Client::over(stream);

        let garbage = {
            client.writer.write_all(b"not json at all\n").unwrap();
            let mut reply = String::new();
            client.reader.read_line(&mut reply).unwrap();
            serde_json::from_str::<Response>(&reply).unwrap()
        };
        assert!(!garbage.ok);
        assert!(garbage.error.unwrap().contains("bad request"));

        let unknown = client.roundtrip(&Request::op_only("dance")).unwrap();
        assert!(!unknown.ok);

        let missing = client.roundtrip(&Request::op_only("submit")).unwrap();
        assert!(!missing.ok);

        let absent = client.roundtrip(&Request::status(99)).unwrap();
        assert!(!absent.ok);
        handle.shutdown();
    }

    #[test]
    fn malformed_bytes_get_typed_errors_and_the_connection_survives() {
        let handle = {
            let fleet = Fleet::homogeneous(Machine::crill(), 1);
            let broker = Broker::new(fleet, BrokerConfig::new(230.0), Arc::new(NullSink));
            Server::start(broker, "127.0.0.1:0", 1).unwrap()
        };
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut client = Client::over(stream);

        // A line that is not valid UTF-8 gets a typed error line, not a
        // hangup.
        client.writer.write_all(b"\xff\xfe{\"op\":\"stats\"}\n").unwrap();
        let mut reply = String::new();
        client.reader.read_line(&mut reply).unwrap();
        let bad: Response = serde_json::from_str(&reply).unwrap();
        assert!(!bad.ok);
        assert!(bad.error.unwrap().contains("not valid UTF-8"));

        // An oversized but newline-terminated line: typed error, stream
        // stays synced, and the next request still works.
        let mut big = vec![b'x'; MAX_LINE_BYTES + 10];
        big.push(b'\n');
        client.writer.write_all(&big).unwrap();
        let mut reply = String::new();
        client.reader.read_line(&mut reply).unwrap();
        let oversized: Response = serde_json::from_str(&reply).unwrap();
        assert!(!oversized.ok);
        assert!(oversized.error.unwrap().contains("exceeds"));

        let stats = client.roundtrip(&Request::op_only("stats")).unwrap();
        assert!(stats.ok, "the connection must survive both bad lines");
        handle.shutdown();
    }

    #[test]
    fn shed_submissions_carry_backpressure_hints_over_the_wire() {
        let handle = {
            let fleet = Fleet::homogeneous(Machine::crill(), 1);
            let mut cfg = BrokerConfig::new(230.0);
            cfg.quantum_timesteps = 2;
            cfg.max_queue = Some(1); // one waiter beyond the running job
            let broker = Broker::new(fleet, cfg, Arc::new(NullSink));
            Server::start(broker, "127.0.0.1:0", 1).unwrap()
        };
        let mut client = Client::connect(&handle.addr().to_string()).unwrap();
        let spec = JobSpec::new("acme", "sp.S").timesteps(4);
        let first = client.roundtrip(&Request::submit(&spec)).unwrap();
        assert_eq!(first.accepted, Some(true), "an empty broker admits");
        let second = client.roundtrip(&Request::submit(&spec)).unwrap();
        assert_eq!(second.accepted, Some(true), "one waiter fits the queue");
        let third = client.roundtrip(&Request::submit(&spec)).unwrap();
        assert_eq!(third.accepted, Some(false));
        assert!(third.reason.unwrap().contains("queue full"));
        assert!(third.retry_after_s.unwrap() > 0.0);
        assert_eq!(third.queue_depth, Some(1));
        handle.shutdown();
    }
}
