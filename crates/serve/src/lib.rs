//! # arcs-serve — a multi-tenant power-budget broker over the tuning stack
//!
//! Everything below the broker tunes *one* application under *one* cap.
//! This crate closes the loop the other way: many tenants submit tuning
//! jobs, the broker owns a single global power budget and arbitrates it
//! hierarchically — global budget → per-node allocations → per-socket
//! package caps — re-dividing on every arrival, completion and
//! degradation. A reallocation reaches a running job as a mid-run
//! `CapChange` through its [`arcs::CapHandle`], the same boundary-
//! coalesced path a scheduled cap fault takes, so the per-region tuners
//! re-adapt without restarting.
//!
//! Layers:
//!
//! * [`broker`] — the deterministic core: admission control, FIFO
//!   scheduling onto an [`arcs_powersim::Fleet`], weighted-fair
//!   water-filling of the budget, virtual-time quantum execution.
//! * [`protocol`] — newline-delimited JSON request/response types for
//!   the TCP service (`submit`, `status`, `stats`, `metrics`, `watch`,
//!   `shutdown`).
//! * [`server`] — the long-running service: one thread owns the broker,
//!   a hand-rolled [`pool::ThreadPool`] serves framed connections.
//! * [`telemetry`] — the live telemetry plane: one
//!   [`TelemetrySnapshot`] frame type shared by the `stats`/`watch`
//!   ops, the `arcs-serve-top` dashboard, and the [`TraceTelemetry`]
//!   replay builder that reconstructs frames from a broker trace
//!   (schema v5+), deterministically.
//!
//! The `arcs-serve` binary hosts the service; `arcs-serve-loadgen`
//! replays deterministic multi-tenant arrival streams against either the
//! in-process broker or a live server and checks throughput, fairness
//! and budget conservation from the emitted trace; `arcs-serve-top`
//! renders the telemetry plane as a live (or replayed) terminal
//! dashboard.

pub mod broker;
pub mod job;
pub mod journal;
pub mod pool;
pub mod protocol;
pub mod server;
pub mod telemetry;

pub use broker::{
    Broker, BrokerConfig, BrokerCounters, CompletedJob, SubmitOutcome, ALLOC_QUANTUM_W,
};
pub use job::{resolve_workload, JobSpec, JobState};
pub use journal::{load_journal, BrokerJournal, JournalError};
pub use protocol::{Request, Response};
pub use server::{Server, ServerHandle};
pub use telemetry::{Digest, TelemetrySnapshot, TenantTelemetry, TraceTelemetry};
