//! A small fixed-size thread pool for connection handling.
//!
//! Hand-rolled on `Mutex<VecDeque>` + `Condvar` (the workspace vendors
//! no executor). Jobs are boxed closures; dropping the pool closes the
//! queue and joins every worker, so a shut-down server cannot leak
//! threads.

use arcs_metrics::{Counter, Gauge, MetricsRegistry};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Instrumentation handles for a pool: queue depth behind the workers,
/// how many workers are mid-job, and a lifetime job counter. Cloned
/// atomics, so updating them never takes the queue lock longer.
#[derive(Clone)]
pub struct PoolMetrics {
    pub queue_depth: Gauge,
    pub busy: Gauge,
    pub jobs: Counter,
    /// Jobs that panicked inside a worker (contained, never fatal).
    pub panics: Counter,
}

impl PoolMetrics {
    /// Resolve the pool's standard series in `registry`.
    pub fn resolve(registry: &MetricsRegistry) -> Self {
        PoolMetrics {
            queue_depth: registry.gauge("serve/pool/queue_depth"),
            busy: registry.gauge("serve/pool/busy"),
            jobs: registry.counter("serve/pool/jobs"),
            panics: registry.counter("serve/pool/panics"),
        }
    }
}

struct Shared {
    queue: Mutex<Queue>,
    available: Condvar,
    metrics: Option<PoolMetrics>,
}

struct Queue {
    jobs: VecDeque<Job>,
    closed: bool,
}

pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    pub fn new(threads: usize) -> Self {
        ThreadPool::with_metrics(threads, None)
    }

    /// Like [`ThreadPool::new`], but every queue/busy transition also
    /// updates the given metric handles.
    pub fn with_metrics(threads: usize, metrics: Option<PoolMetrics>) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue { jobs: VecDeque::new(), closed: false }),
            available: Condvar::new(),
            metrics,
        });
        let workers = (0..threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("arcs-serve-worker-{i}"))
                    .spawn(move || worker(shared, i))
                    .expect("spawning a pool worker")
            })
            .collect();
        ThreadPool { shared, workers }
    }

    /// Queue a job; some idle worker picks it up. Returns `false` if the
    /// pool is already shutting down (the job is dropped).
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) -> bool {
        let mut queue = self.shared.queue.lock();
        if queue.closed {
            return false;
        }
        queue.jobs.push_back(Box::new(job));
        let depth = queue.jobs.len();
        drop(queue);
        if let Some(m) = &self.shared.metrics {
            m.queue_depth.set(depth as f64);
        }
        self.shared.available.notify_one();
        true
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.queue.lock().closed = true;
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Sentinel that respawns a replacement worker if this one dies to a
/// panic that somehow escaped [`catch_unwind`](std::panic::catch_unwind)
/// (e.g. a payload that panics on drop) — pool capacity never decays.
/// Respawned workers are not in the pool's join list; they exit with the
/// queue like any other worker, just unjoined.
struct RespawnGuard {
    shared: Arc<Shared>,
    index: usize,
}

impl Drop for RespawnGuard {
    fn drop(&mut self) {
        if std::thread::panicking() && !self.shared.queue.lock().closed {
            let shared = Arc::clone(&self.shared);
            let index = self.index;
            let _ = std::thread::Builder::new()
                .name(format!("arcs-serve-worker-{index}"))
                .spawn(move || worker(shared, index));
        }
    }
}

fn worker(shared: Arc<Shared>, index: usize) {
    let _guard = RespawnGuard { shared: Arc::clone(&shared), index };
    loop {
        let (job, depth) = {
            let mut queue = shared.queue.lock();
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break (job, queue.jobs.len());
                }
                if queue.closed {
                    return;
                }
                shared.available.wait(&mut queue);
            }
        };
        if let Some(m) = &shared.metrics {
            m.queue_depth.set(depth as f64);
            m.busy.add(1.0);
            m.jobs.inc();
        }
        // Contain the job: one panicking connection handler must not
        // take its worker (or the whole process, under panic=abort-free
        // builds) with it.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
        if let Some(m) = &shared.metrics {
            m.busy.add(-1.0);
            if outcome.is_err() {
                m.panics.inc();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_runs_every_job_and_joins_on_drop() {
        let ran = Arc::new(AtomicUsize::new(0));
        let pool = ThreadPool::new(4);
        for _ in 0..64 {
            let ran = Arc::clone(&ran);
            assert!(pool.execute(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            }));
        }
        // Drop joins the workers, so every queued job has run after it.
        drop(pool);
        assert_eq!(ran.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn panicking_jobs_are_contained_and_counted() {
        let registry = MetricsRegistry::new();
        let metrics = PoolMetrics::resolve(&registry);
        let ran = Arc::new(AtomicUsize::new(0));
        let pool = ThreadPool::with_metrics(1, Some(metrics.clone()));
        // One worker: if the panic killed it, nothing after could run.
        for i in 0..8 {
            let ran = Arc::clone(&ran);
            assert!(pool.execute(move || {
                if i % 2 == 0 {
                    panic!("connection handler blew up");
                }
                ran.fetch_add(1, Ordering::SeqCst);
            }));
        }
        drop(pool);
        assert_eq!(ran.load(Ordering::SeqCst), 4, "surviving jobs all ran");
        assert_eq!(metrics.panics.get(), 4, "every panic was counted");
        assert_eq!(metrics.jobs.get(), 8);
    }

    #[test]
    fn a_closed_pool_refuses_work() {
        let pool = ThreadPool::new(1);
        pool.shared.queue.lock().closed = true;
        pool.shared.available.notify_all();
        assert!(!pool.execute(|| {}));
    }
}
