//! Tenant job descriptions and workload resolution.

use arcs_kernels::{model, Class};
use arcs_powersim::WorkloadDescriptor;
use serde::{Deserialize, Serialize};

/// What a tenant asks the broker to run.
///
/// The broker reasons about a job through two numbers: `floor_w`, the
/// lowest node-level power allocation the job will accept (admission
/// control rejects jobs whose floor no budget or node could ever cover),
/// and its tenant's `weight`, which sets the tenant's share of whatever
/// budget is left above the floors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    pub tenant: String,
    /// Workload name, `<kernel>.<class>` — e.g. `sp.W`, `cg.S` (see
    /// [`resolve_workload`]).
    pub workload: String,
    /// Application timesteps to run; 0 means the workload's own default.
    #[serde(default)]
    pub timesteps: usize,
    /// Lowest node-level cap (watts) the job will run under. `None`
    /// accepts the node's own RAPL floor.
    #[serde(default)]
    pub floor_w: Option<f64>,
    /// Tenant fair-share weight (first submission wins for a tenant;
    /// values ≤ 0 mean the default of 1).
    #[serde(default)]
    pub weight: f64,
    /// When set, the job runs under a deterministic
    /// [`FaultPlan::flaky_rapl`](arcs_powersim::FaultPlan::flaky_rapl)
    /// seeded here, plus the standard self-healing ladder — the path by
    /// which jobs go `Degraded` and get pinned to their floor.
    #[serde(default)]
    pub fault_seed: Option<u64>,
}

impl JobSpec {
    pub fn new(tenant: impl Into<String>, workload: impl Into<String>) -> Self {
        JobSpec {
            tenant: tenant.into(),
            workload: workload.into(),
            timesteps: 0,
            floor_w: None,
            weight: 1.0,
            fault_seed: None,
        }
    }

    pub fn timesteps(mut self, steps: usize) -> Self {
        self.timesteps = steps;
        self
    }

    pub fn floor_w(mut self, watts: f64) -> Self {
        self.floor_w = Some(watts);
        self
    }

    pub fn weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    pub fn fault_seed(mut self, seed: u64) -> Self {
        self.fault_seed = Some(seed);
        self
    }
}

/// Resolve a `<kernel>.<class>` workload name to its descriptor.
/// Kernels: `sp`, `bt`, `cg`, `ep`, `mg`; classes: `S`, `W`, `A`, `B`,
/// `C`. Returns `None` for anything else.
pub fn resolve_workload(name: &str) -> Option<WorkloadDescriptor> {
    let (kernel, class) = name.split_once('.')?;
    let class = match class {
        "S" => Class::S,
        "W" => Class::W,
        "A" => Class::A,
        "B" => Class::B,
        "C" => Class::C,
        _ => return None,
    };
    Some(match kernel {
        "sp" => model::sp(class),
        "bt" => model::bt(class),
        "cg" => model::cg(class),
        "ep" => model::ep(class),
        "mg" => model::mg(class),
        _ => return None,
    })
}

/// Where a job sits in its lifecycle — the `status` op's answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Admitted, waiting for a free node and budget headroom (including
    /// requeued jobs sitting out a retry backoff).
    Queued,
    Running,
    Completed,
    Rejected,
    /// Terminal: the job's retry budget ran out, or no surviving node
    /// could ever host it (v9 resilience layer).
    Failed,
    /// Terminal: load shedding turned the job away at admission because
    /// the bounded queue was full. The submit response carries a
    /// `retry_after_s` backpressure hint.
    Shed,
}

impl std::fmt::Display for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Rejected => "rejected",
            JobState::Failed => "failed",
            JobState::Shed => "shed",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_names_resolve() {
        for name in ["sp.S", "bt.W", "cg.A", "ep.B", "mg.C"] {
            let wl = resolve_workload(name).unwrap_or_else(|| panic!("{name} must resolve"));
            assert!(wl.timesteps > 0);
            assert!(!wl.step.is_empty());
        }
        for bad in ["sp", "sp.X", "lu.S", "", "sp.S.extra"] {
            assert!(resolve_workload(bad).is_none(), "{bad} must not resolve");
        }
    }

    #[test]
    fn spec_builder_round_trips_through_json() {
        let spec = JobSpec::new("acme", "sp.S").timesteps(8).floor_w(70.0).weight(2.0);
        let text = serde_json::to_string(&spec).unwrap();
        let back: JobSpec = serde_json::from_str(&text).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.fault_seed, None);
    }
}
