//! The deterministic broker core: admission, scheduling, and hierarchical
//! power-budget arbitration over a simulated fleet.
//!
//! # Execution model
//!
//! The broker is a discrete-event simulator over *virtual* time
//! (integer microseconds, so event ordering is exact). One job runs per
//! node; a job executes as a sequence of *quanta* — successive
//! [`Runner`] runs over the same persistent executor and tuner, so the
//! tuner's search state, the fault clock and the memo cache all carry
//! across quanta exactly as they would across the phases of one long
//! run. Between quanta the broker may move the job's power allocation;
//! the move travels through the job's [`CapHandle`] and lands at the
//! next region boundary as an ordinary mid-run `CapChange` — the same
//! path a scheduled cap fault takes, which the tuner already adapts to.
//!
//! # Power hierarchy
//!
//! The budget is arbitrated in three levels: one *global* budget (watts)
//! owned by the broker, split into *node-level* allocations (what
//! [`TraceEvent::CapReallocated`] records), each programmed onto the
//! node as a *per-socket* package cap (`node watts / sockets`, see
//! [`FleetNode::package_cap_w`](arcs_powersim::FleetNode::package_cap_w)).
//!
//! # Admission, fairness, conservation
//!
//! * **Admission**: a job is rejected at submission if no budget or node
//!   could *ever* cover its floor cap. Anything admissible waits its
//!   turn (FIFO) for a free node plus budget headroom.
//! * **Fairness**: every running job is pinned at least its floor; the
//!   surplus is water-filled proportionally to tenant weight (a
//!   tenant's weight is split evenly across its running jobs), capped
//!   at each node's hardware maximum. `Degraded` jobs stop receiving
//!   surplus and hold exactly their floor.
//! * **Conservation**: Σ allocations ≤ budget at every reallocation
//!   point. Allocations are quantized down to [`ALLOC_QUANTUM_W`] steps
//!   above the floor, which both preserves the invariant under float
//!   arithmetic and keeps the per-cap memo-cache key space small.
//!
//! Determinism: all state lives in `BTreeMap`/`BTreeSet` (iteration
//! order is the id order), virtual time is integral, and the simulator
//! underneath is deterministic — the same submission sequence always
//! produces byte-identical traces.

use crate::job::{resolve_workload, JobSpec, JobState};
use crate::journal::{load_journal, BrokerJournal, JournalError};
use crate::telemetry::{self, event_line, push_event, Digest, TelemetrySnapshot, TenantTelemetry};
use arcs::backend::Runner;
use arcs::{
    CapHandle, ConfigSpace, RegionTuner, ResilienceOptions, RunStatus, SimExecutor, TunerOptions,
};
use arcs_metrics::{Counter, Gauge, GaugeFamily, Histogram, HistogramFamily, MetricsRegistry};
use arcs_powersim::{FaultPlan, Fleet, Machine, NodeFaultClass, NodeFaultPlan, WorkloadDescriptor};
use arcs_trace::{JobAllocation, TraceEvent, TraceSink};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::Path;
use std::sync::mpsc::Sender;
use std::sync::Arc;

/// Node-level allocations move in steps of this many watts (above each
/// job's floor). Coarse steps keep reallocation churn out of the
/// simulator's per-cap memo-cache key space.
pub const ALLOC_QUANTUM_W: f64 = 0.25;

/// Tolerance for budget comparisons (float sums of quantized watts).
const EPS_W: f64 = 1e-6;

/// Broker tuning knobs beyond the budget itself.
#[derive(Debug, Clone, Copy)]
pub struct BrokerConfig {
    /// The global power budget, watts.
    pub budget_w: f64,
    /// Application timesteps per scheduling quantum — the granularity at
    /// which reallocations reach a running job.
    pub quantum_timesteps: usize,
    /// Self-healing ladder applied to every job run (faulted jobs are
    /// always given at least [`ResilienceOptions::standard`], or they
    /// could not degrade gracefully).
    pub resilience: Option<ResilienceOptions>,
    /// Deterministic node-outage schedule for the fleet; `None` (or an
    /// inactive plan) keeps every node immortal.
    pub node_faults: Option<NodeFaultPlan>,
    /// Bound on the admission queue: submissions beyond it are *shed*
    /// with a typed reason and a backpressure hint instead of growing
    /// the queue without bound. `None` keeps the queue unbounded.
    pub max_queue: Option<usize>,
    /// How many times a job may be re-placed after losing its node to a
    /// crash before it fails typed. Graceful drains cost no retry.
    pub max_retries: u64,
    /// Base of the deterministic exponential backoff a crash-requeued
    /// job sits out before becoming placeable again, virtual seconds
    /// (doubles per crash, capped at 64×).
    pub backoff_base_s: f64,
}

impl BrokerConfig {
    pub fn new(budget_w: f64) -> Self {
        BrokerConfig {
            budget_w,
            quantum_timesteps: 4,
            resilience: None,
            node_faults: None,
            max_queue: None,
            max_retries: 3,
            backoff_base_s: 0.05,
        }
    }
}

/// Event-class codes ordering simultaneous events deterministically:
/// capacity returns first, parked jobs release next, quanta complete,
/// and outages strike last — so a quantum ending at the same instant a
/// node fails narrowly escapes, always.
const EV_RECOVER: u8 = 0;
const EV_RELEASE: u8 = 1;
const EV_QUANTUM: u8 = 2;
const EV_FAIL: u8 = 3;

/// Payload of one pending discrete event (keyed `(t_us, class, id)`).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    /// The node keyed by `id` rejoins the pool.
    Recover,
    /// The job keyed by `id` finished its retry backoff and requeues.
    Release,
    /// The job keyed by `id` finishes its in-flight quantum.
    Quantum,
    /// The node keyed by `id` leaves service; `down_us` is the outage
    /// length (`None` = permanent).
    NodeFail { class: NodeFaultClass, down_us: Option<u64> },
}

/// A finished job's summary, kept for `status` queries.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedJob {
    pub job: u64,
    pub tenant: String,
    pub node: u64,
    pub status: RunStatus,
    pub time_s: f64,
    pub energy_j: f64,
}

/// What [`Broker::submit`] decided.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitOutcome {
    /// Admitted under this job id (queued or already running).
    Admitted(u64),
    Rejected {
        job: u64,
        reason: String,
    },
    /// Turned away by load shedding: the bounded admission queue is
    /// full. `retry_after_s` is the backpressure hint (virtual seconds
    /// until capacity can next change) the submit response carries.
    Shed {
        job: u64,
        reason: String,
        retry_after_s: f64,
        queue_depth: u64,
    },
}

impl SubmitOutcome {
    pub fn job(&self) -> u64 {
        match self {
            SubmitOutcome::Admitted(job) => *job,
            SubmitOutcome::Rejected { job, .. } => *job,
            SubmitOutcome::Shed { job, .. } => *job,
        }
    }
}

/// Results of a quantum simulated at start time, applied when its
/// completion event fires.
struct QuantumResult {
    steps: usize,
    time_s: f64,
    energy_j: f64,
    degraded: bool,
}

struct RunningJob {
    spec: JobSpec,
    node: u64,
    /// Effective node-level floor on the assigned node: the larger of
    /// the job's requested floor and the node's RAPL floor.
    floor_w: f64,
    /// Current node-level allocation.
    alloc_w: f64,
    /// Node hardware maximum, cached from the fleet.
    max_w: f64,
    handle: CapHandle,
    exec: SimExecutor,
    tuner: RegionTuner,
    wl: WorkloadDescriptor,
    resilience: Option<ResilienceOptions>,
    remaining: usize,
    time_s: f64,
    energy_j: f64,
    degraded: bool,
    in_flight: Option<QuantumResult>,
    /// Virtual instant of the pending quantum event, so a crash can
    /// cancel it.
    event_at: Option<u64>,
    /// Placements so far, this one included — what the retry budget
    /// compares against.
    attempts: u64,
}

/// An admitted job waiting (or waiting again) for a node: the spec plus
/// whatever progress survived earlier placements. A crash discards the
/// in-flight quantum but keeps every *completed* quantum's timesteps,
/// time and energy — the job resumes where its last boundary left it
/// (with a fresh executor and tuner on the new node).
struct QueuedJob {
    spec: JobSpec,
    remaining: usize,
    time_s: f64,
    energy_j: f64,
    degraded: bool,
    /// Placements consumed so far (0 for a never-placed job).
    attempts: u64,
    /// True once the job has been requeued at least once — queue-wait
    /// is sampled only on first placement.
    requeued: bool,
}

/// Aggregate counters for the `stats` op and load-generator summaries.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BrokerCounters {
    pub submitted: u64,
    pub queued: u64,
    pub running: u64,
    pub completed: u64,
    pub rejected: u64,
    pub degraded: u64,
    /// Terminal failures: retry budget exhausted or stranded (v9).
    pub failed: u64,
    /// Turned away by load shedding at admission (v9).
    pub shed: u64,
    /// Requeue events so far (crash and drain requeues both).
    pub requeued: u64,
    /// Nodes currently out of service (down or draining).
    pub nodes_down: u64,
}

/// Per-tenant handles resolved once (at the tenant's first submission)
/// from the broker's label families, so steady-state emission allocates
/// nothing.
struct TenantHandles {
    wait: Histogram,
    turnaround: Histogram,
    alloc_w: Gauge,
}

/// The broker's always-on SLO instrumentation. The registry is created
/// in [`Broker::new`] (not attached) so `stats`, `watch` and the
/// Prometheus `metrics` op are always rich — the broker is a service,
/// not a hot loop, and its emission points are coarse (submission,
/// placement, reallocation, completion).
struct BrokerMetrics {
    registry: Arc<MetricsRegistry>,
    /// `serve/queue_wait_s`: submission → placement, virtual seconds.
    queue_wait_s: Histogram,
    /// `serve/turnaround_s`: submission → completion, virtual seconds.
    turnaround_s: Histogram,
    /// `serve/realloc_churn_w`: Σ |Δ allocation| per reallocation.
    realloc_churn_w: Histogram,
    /// `serve/reallocations`: how many times the budget was re-divided.
    reallocations: Counter,
    /// `serve/admission{outcome="admitted"|"rejected"|"shed"}`.
    admitted: Counter,
    rejected: Counter,
    shed: Counter,
    /// `serve/requeues`: jobs put back in the queue after losing a node.
    requeues: Counter,
    /// `serve/node_failures`: fleet outages (crash and drain alike).
    node_failures: Counter,
    /// `serve/job_failures`: jobs that failed terminally.
    failed: Counter,
    wait_by_tenant: HistogramFamily,
    turnaround_by_tenant: HistogramFamily,
    alloc_by_tenant: GaugeFamily,
    tenants: BTreeMap<String, TenantHandles>,
}

impl BrokerMetrics {
    fn new() -> Self {
        let registry = Arc::new(MetricsRegistry::new());
        let admission = registry.counter_family("serve/admission", "outcome");
        BrokerMetrics {
            queue_wait_s: registry.histogram("serve/queue_wait_s"),
            turnaround_s: registry.histogram("serve/turnaround_s"),
            realloc_churn_w: registry.histogram("serve/realloc_churn_w"),
            reallocations: registry.counter("serve/reallocations"),
            admitted: admission.with_label("admitted"),
            rejected: admission.with_label("rejected"),
            shed: admission.with_label("shed"),
            requeues: registry.counter("serve/requeues"),
            node_failures: registry.counter("serve/node_failures"),
            failed: registry.counter("serve/job_failures"),
            wait_by_tenant: registry.histogram_family("serve/queue_wait_s", "tenant"),
            turnaround_by_tenant: registry.histogram_family("serve/turnaround_s", "tenant"),
            alloc_by_tenant: registry.gauge_family("serve/alloc_w", "tenant"),
            tenants: BTreeMap::new(),
            registry,
        }
    }

    /// Resolve (or create) the per-tenant handles for `name`.
    fn tenant(&mut self, name: &str) -> &TenantHandles {
        if !self.tenants.contains_key(name) {
            let handles = TenantHandles {
                wait: self.wait_by_tenant.with_label(name),
                turnaround: self.turnaround_by_tenant.with_label(name),
                alloc_w: self.alloc_by_tenant.with_label(name),
            };
            self.tenants.insert(name.to_string(), handles);
        }
        &self.tenants[name]
    }
}

/// One `watch` subscriber: a channel plus its push period in quantum
/// events. Dropped silently when the receiver goes away.
struct Watcher {
    tx: Sender<TelemetrySnapshot>,
    every: u64,
    seen: u64,
}

/// The multi-tenant power-budget broker (see module docs).
pub struct Broker {
    fleet: Fleet,
    cfg: BrokerConfig,
    trace: Arc<dyn TraceSink>,
    next_job: u64,
    /// Virtual clock, microseconds.
    now_us: u64,
    /// Pending discrete events, keyed `(t_us, class, id)` — `BTreeMap`
    /// so the next event is deterministic and simultaneous events fire
    /// in the [`EV_RECOVER`]..[`EV_FAIL`] class order.
    events: BTreeMap<(u64, u8, u64), Ev>,
    /// Admitted jobs waiting for a node + budget headroom, FIFO.
    queue: VecDeque<u64>,
    queued: BTreeMap<u64, QueuedJob>,
    /// Crash-requeued jobs sitting out their retry backoff; each owns a
    /// pending [`Ev::Release`] event.
    parked: BTreeMap<u64, QueuedJob>,
    running: BTreeMap<u64, RunningJob>,
    completed: BTreeMap<u64, CompletedJob>,
    rejected: BTreeMap<u64, String>,
    /// Terminally failed jobs → typed reason (v9).
    failed: BTreeMap<u64, String>,
    /// Load-shed jobs → typed reason (v9).
    shed: BTreeMap<u64, String>,
    /// Node → virtual instant (µs) it went down.
    down_nodes: BTreeMap<u64, u64>,
    /// Draining nodes (victim still finishing its quantum) → outage
    /// length once the drain completes (`None` = permanent).
    draining: BTreeMap<u64, Option<u64>>,
    /// Tenant → fair-share weight (first submission wins).
    tenants: BTreeMap<String, f64>,
    /// Tenant → rejected-job count (for telemetry rows).
    tenant_rejected: BTreeMap<String, u64>,
    tenant_failed: BTreeMap<String, u64>,
    tenant_shed: BTreeMap<String, u64>,
    tenant_requeued: BTreeMap<String, u64>,
    requeues: u64,
    /// Write-ahead journal; when attached, every submit and step is
    /// recorded (and flushed) before it is applied.
    journal: Option<BrokerJournal>,
    free_nodes: BTreeSet<u64>,
    /// Submission time (virtual µs) of every live job, for queue-wait
    /// and turnaround attribution; entries die with the job.
    submit_us: BTreeMap<u64, u64>,
    metrics: BrokerMetrics,
    /// Rolling narrative for the dashboard's events pane.
    event_pane: VecDeque<String>,
    watchers: Vec<Watcher>,
}

impl Broker {
    pub fn new(fleet: Fleet, cfg: BrokerConfig, trace: Arc<dyn TraceSink>) -> Self {
        let free_nodes: BTreeSet<u64> = fleet.nodes().iter().map(|n| n.id).collect();
        // Seed the fleet's entire outage schedule up front: every fault
        // is a pure function of (seed, node, ordinal), so the schedule
        // is fixed at birth and identical across replays.
        let mut events = BTreeMap::new();
        if let Some(plan) = cfg.node_faults.filter(|p| p.is_active()) {
            for &node in &free_nodes {
                for fault in plan.schedule_for(node) {
                    let t_us = (fault.at_s * 1e6).round().max(0.0) as u64;
                    let down_us = fault.down_s.map(|s| (s * 1e6).round().max(1.0) as u64);
                    events.insert(
                        (t_us, EV_FAIL, node),
                        Ev::NodeFail { class: fault.class, down_us },
                    );
                }
            }
        }
        Broker {
            fleet,
            cfg,
            trace,
            next_job: 0,
            now_us: 0,
            events,
            queue: VecDeque::new(),
            queued: BTreeMap::new(),
            parked: BTreeMap::new(),
            running: BTreeMap::new(),
            completed: BTreeMap::new(),
            rejected: BTreeMap::new(),
            failed: BTreeMap::new(),
            shed: BTreeMap::new(),
            down_nodes: BTreeMap::new(),
            draining: BTreeMap::new(),
            tenants: BTreeMap::new(),
            tenant_rejected: BTreeMap::new(),
            tenant_failed: BTreeMap::new(),
            tenant_shed: BTreeMap::new(),
            tenant_requeued: BTreeMap::new(),
            requeues: 0,
            journal: None,
            free_nodes,
            submit_us: BTreeMap::new(),
            metrics: BrokerMetrics::new(),
            event_pane: VecDeque::new(),
            watchers: Vec::new(),
        }
    }

    /// Attach a write-ahead journal. Must be called on a *fresh* broker
    /// (before any submit or step): the journal's first record is a
    /// [`TraceEvent::BrokerConfigured`] header describing how to rebuild
    /// this broker, and recovery replays every op recorded after it.
    pub fn attach_journal(&mut self, journal: BrokerJournal) {
        journal.append(
            self.now_s(),
            TraceEvent::BrokerConfigured {
                budget_w: self.cfg.budget_w,
                quantum_timesteps: self.cfg.quantum_timesteps as u64,
                machines: self.fleet.nodes().iter().map(|n| n.machine.name.clone()).collect(),
                max_queue: self.cfg.max_queue.map(|q| q as u64),
                max_retries: self.cfg.max_retries,
                backoff_base_s: self.cfg.backoff_base_s,
                resilience: serde_json::to_string(&self.cfg.resilience)
                    .expect("resilience options serialize"),
                node_faults: serde_json::to_string(&self.cfg.node_faults)
                    .expect("node-fault plans serialize"),
            },
        );
        self.journal = Some(journal);
    }

    /// The attached journal's first absorbed write error, if any.
    pub fn journal_error(&self) -> Option<String> {
        self.journal.as_ref().and_then(|j| j.last_error())
    }

    fn journal_op(&self, event: TraceEvent) {
        if let Some(j) = &self.journal {
            j.append(self.now_s(), event);
        }
    }

    /// Reconstruct a broker from its journal by deterministic replay.
    ///
    /// The journal header rebuilds the fleet and config; every recorded
    /// op (submission or step) is then re-applied in order. Because the
    /// broker is deterministic, the recovered broker reaches the exact
    /// state the original had when it last flushed — and with `trace`
    /// emission on during replay, the recovered trace file is
    /// byte-identical to the uninterrupted run's.
    ///
    /// `new_journal`, when given, is attached *before* replay so the new
    /// journal re-records the header and every replayed op — recovery
    /// from a recovery works. A [`TraceEvent::CheckpointRecovered`]
    /// marker is appended to the new journal (never to the trace, whose
    /// bytes must not shift) once replay finishes.
    pub fn recover(
        journal_path: &Path,
        trace: Arc<dyn TraceSink>,
        new_journal: Option<BrokerJournal>,
    ) -> Result<Broker, JournalError> {
        let records = load_journal(journal_path)?;
        let mut it = records.into_iter();
        let header = it.next().ok_or_else(|| JournalError::Header("empty journal".into()))?;
        let TraceEvent::BrokerConfigured {
            budget_w,
            quantum_timesteps,
            machines,
            max_queue,
            max_retries,
            backoff_base_s,
            resilience,
            node_faults,
        } = header.event
        else {
            return Err(JournalError::Header(
                "journal must start with a BrokerConfigured record".into(),
            ));
        };
        let mut fleet = Fleet::new();
        for name in &machines {
            let machine = match name.as_str() {
                "crill" => Machine::crill(),
                "minotaur" => Machine::minotaur(),
                other => {
                    return Err(JournalError::Header(format!("unknown machine model {other:?}")))
                }
            };
            fleet.push(machine);
        }
        let resilience: Option<ResilienceOptions> = serde_json::from_str(&resilience)
            .map_err(|e| JournalError::Header(format!("bad resilience options: {e}")))?;
        let node_faults: Option<NodeFaultPlan> = serde_json::from_str(&node_faults)
            .map_err(|e| JournalError::Header(format!("bad node-fault plan: {e}")))?;
        let cfg = BrokerConfig {
            budget_w,
            quantum_timesteps: quantum_timesteps as usize,
            resilience,
            node_faults,
            max_queue: max_queue.map(|q| q as usize),
            max_retries,
            backoff_base_s,
        };
        let mut broker = Broker::new(fleet, cfg, trace);
        if let Some(journal) = new_journal {
            broker.attach_journal(journal);
        }
        let mut ops = 0u64;
        for rec in it {
            match rec.event {
                TraceEvent::JobSubmitted {
                    tenant,
                    workload,
                    weight,
                    timesteps,
                    fault_seed,
                    requested_floor_w,
                    ..
                } => {
                    broker.submit(JobSpec {
                        tenant,
                        workload,
                        timesteps: timesteps as usize,
                        floor_w: requested_floor_w,
                        weight,
                        fault_seed,
                    });
                }
                TraceEvent::BrokerStep {} => {
                    broker.step();
                }
                // Marker left by an earlier recovery of this lineage.
                TraceEvent::CheckpointRecovered { .. } => continue,
                other => {
                    return Err(JournalError::Header(format!(
                        "unexpected journal record {:?}",
                        other.kind()
                    )))
                }
            }
            ops += 1;
        }
        let c = broker.counters();
        broker.journal_op(TraceEvent::CheckpointRecovered {
            ops,
            submitted: c.submitted,
            completed: c.completed,
        });
        Ok(broker)
    }

    pub fn budget_w(&self) -> f64 {
        self.cfg.budget_w
    }

    /// The broker's own metrics registry — always present (every broker
    /// owns one from birth). The server wires its thread-pool gauges here;
    /// the `arcs-serve` binary bridges trace write errors into it.
    pub fn registry(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.metrics.registry)
    }

    /// Virtual time, seconds.
    pub fn now_s(&self) -> f64 {
        self.now_us as f64 / 1e6
    }

    pub fn counters(&self) -> BrokerCounters {
        BrokerCounters {
            submitted: self.next_job,
            queued: (self.queue.len() + self.parked.len()) as u64,
            running: self.running.len() as u64,
            completed: self.completed.len() as u64,
            rejected: self.rejected.len() as u64,
            degraded: self.completed.values().filter(|c| c.status == RunStatus::Degraded).count()
                as u64
                + self.running.values().filter(|r| r.degraded).count() as u64,
            failed: self.failed.len() as u64,
            shed: self.shed.len() as u64,
            requeued: self.requeues,
            nodes_down: (self.down_nodes.len() + self.draining.len()) as u64,
        }
    }

    pub fn job_state(&self, job: u64) -> Option<JobState> {
        if self.queued.contains_key(&job) || self.parked.contains_key(&job) {
            Some(JobState::Queued)
        } else if self.running.contains_key(&job) {
            Some(JobState::Running)
        } else if self.completed.contains_key(&job) {
            Some(JobState::Completed)
        } else if self.rejected.contains_key(&job) {
            Some(JobState::Rejected)
        } else if self.failed.contains_key(&job) {
            Some(JobState::Failed)
        } else if self.shed.contains_key(&job) {
            Some(JobState::Shed)
        } else {
            None
        }
    }

    pub fn completed_jobs(&self) -> &BTreeMap<u64, CompletedJob> {
        &self.completed
    }

    /// Why a terminal job ended the way it did: the rejection, failure
    /// or shed reason (whichever state the job is in).
    pub fn rejection_reason(&self, job: u64) -> Option<&str> {
        self.rejected
            .get(&job)
            .or_else(|| self.failed.get(&job))
            .or_else(|| self.shed.get(&job))
            .map(String::as_str)
    }

    /// All internal events drained and nothing queued, parked or
    /// running. (Seeded fleet faults count as events: an idle broker has
    /// lived its whole outage schedule.)
    pub fn is_idle(&self) -> bool {
        self.events.is_empty()
            && self.running.is_empty()
            && self.queue.is_empty()
            && self.parked.is_empty()
    }

    /// Whether [`step`](Broker::step) has work — a pending event, or
    /// stranded queued jobs to sweep once no event can ever free
    /// capacity for them. The server's cue to keep advancing virtual
    /// time between commands.
    pub fn has_pending_events(&self) -> bool {
        !self.events.is_empty() || !self.queue.is_empty()
    }

    fn emit(&self, event: TraceEvent) {
        if self.trace.enabled() {
            self.trace.record(Some(self.now_s()), event);
        }
    }

    /// Submit a job at the current virtual time. Admission control runs
    /// here: inadmissible jobs are rejected immediately and never
    /// schedule; everything else queues FIFO and is placed as nodes and
    /// budget free up (placement may happen within this call).
    pub fn submit(&mut self, spec: JobSpec) -> SubmitOutcome {
        let job = self.next_job;
        self.next_job += 1;
        let weight = if spec.weight > 0.0 { spec.weight } else { 1.0 };
        self.tenants.entry(spec.tenant.clone()).or_insert(weight);

        let requested_floor = spec.floor_w.unwrap_or(0.0).max(0.0);
        // The cheapest effective floor over nodes that could host the
        // job at all — what admission reasons about.
        let min_floor = self
            .fleet
            .nodes()
            .iter()
            .filter(|n| requested_floor <= n.max_cap_w() + EPS_W)
            .map(|n| requested_floor.max(n.min_cap_w()))
            .fold(None, |best: Option<f64>, f| Some(best.map_or(f, |b| b.min(f))));
        let floor_w = min_floor.unwrap_or(requested_floor);
        // The submitted event doubles as the journal's op record, so it
        // carries everything needed to rebuild the spec on replay.
        let submitted = TraceEvent::JobSubmitted {
            job,
            tenant: spec.tenant.clone(),
            workload: spec.workload.clone(),
            floor_w,
            weight,
            timesteps: spec.timesteps as u64,
            fault_seed: spec.fault_seed,
            requested_floor_w: spec.floor_w,
        };
        self.journal_op(submitted.clone());
        self.emit(submitted);
        self.metrics.tenant(&spec.tenant);
        let line =
            event_line(self.now_s(), telemetry::fmt_submitted(job, &spec.tenant, &spec.workload));
        push_event(&mut self.event_pane, line);

        let reason = if self.fleet.is_empty() {
            Some("the fleet has no nodes".to_string())
        } else if resolve_workload(&spec.workload).is_none() {
            Some(format!("unknown workload {:?}", spec.workload))
        } else if min_floor.is_none() {
            Some("floor cap exceeds every node's capacity".to_string())
        } else if floor_w > self.cfg.budget_w + EPS_W {
            Some("floor cap exceeds the global budget".to_string())
        } else {
            None
        };
        if let Some(reason) = reason {
            self.emit(TraceEvent::JobRejected {
                job,
                tenant: spec.tenant.clone(),
                floor_w,
                reason: reason.clone(),
            });
            self.metrics.rejected.inc();
            *self.tenant_rejected.entry(spec.tenant.clone()).or_insert(0) += 1;
            let line =
                event_line(self.now_s(), telemetry::fmt_rejected(job, &spec.tenant, &reason));
            push_event(&mut self.event_pane, line);
            self.rejected.insert(job, reason.clone());
            return SubmitOutcome::Rejected { job, reason };
        }

        // Load shedding: checked after the JobSubmitted emission (shed
        // jobs count as submitted — the conservation identity needs
        // them) and after rejection (a job that could never run gets the
        // more specific answer).
        if let Some(max_queue) = self.cfg.max_queue {
            let depth = self.queue.len() + self.parked.len();
            if depth >= max_queue {
                let reason = format!("admission queue full ({depth}/{max_queue})");
                let retry_after_s = self.retry_hint_s();
                let queue_depth = depth as u64;
                self.emit(TraceEvent::JobShed {
                    job,
                    tenant: spec.tenant.clone(),
                    reason: reason.clone(),
                    queue_depth,
                    retry_after_s,
                });
                self.metrics.shed.inc();
                *self.tenant_shed.entry(spec.tenant.clone()).or_insert(0) += 1;
                let line =
                    event_line(self.now_s(), telemetry::fmt_shed(job, &spec.tenant, queue_depth));
                push_event(&mut self.event_pane, line);
                self.shed.insert(job, reason.clone());
                return SubmitOutcome::Shed { job, reason, retry_after_s, queue_depth };
            }
        }

        self.metrics.admitted.inc();
        self.submit_us.insert(job, self.now_us);
        self.queue.push_back(job);
        self.queued.insert(
            job,
            QueuedJob {
                spec,
                remaining: 0,
                time_s: 0.0,
                energy_j: 0.0,
                degraded: false,
                attempts: 0,
                requeued: false,
            },
        );
        self.schedule();
        SubmitOutcome::Admitted(job)
    }

    /// Backpressure hint for shed submissions: virtual seconds until the
    /// next pending event — before it, capacity cannot change.
    fn retry_hint_s(&self) -> f64 {
        match self.events.keys().next() {
            Some(&(t, _, _)) => {
                ((t.max(self.now_us) - self.now_us) as f64 / 1e6).max(self.cfg.backoff_base_s)
            }
            None => self.cfg.backoff_base_s,
        }
    }

    /// Process the next discrete event (quantum end, node fail/recover,
    /// retry release). When no event remains but jobs are still queued,
    /// nothing can ever free capacity for them — they are swept to
    /// typed failures so the conservation identity closes at idle.
    /// Returns `false` only when there is nothing left to do.
    pub fn step(&mut self) -> bool {
        if self.events.is_empty() {
            if self.queue.is_empty() {
                return false;
            }
            self.journal_op(TraceEvent::BrokerStep {});
            self.starve_stranded();
            self.notify_watchers();
            return true;
        }
        // Write-ahead: the op is durable before any of its effects are.
        self.journal_op(TraceEvent::BrokerStep {});
        let (&(t, class, id), &ev) = self.events.iter().next().expect("checked non-empty");
        self.events.remove(&(t, class, id));
        self.now_us = self.now_us.max(t);
        match ev {
            Ev::Quantum => self.finish_quantum(id),
            Ev::NodeFail { class, down_us } => self.node_fail(id, class, down_us),
            Ev::Recover => self.node_recover(id),
            Ev::Release => self.release(id),
        }
        self.notify_watchers();
        true
    }

    /// Apply a finished quantum: bank its progress, then complete the
    /// job, continue it, or — when its node is draining — requeue it
    /// (free: a graceful drain costs no retry, no backoff) and take the
    /// node down.
    fn finish_quantum(&mut self, job: u64) {
        let rj = self.running.get_mut(&job).expect("event for a job not running");
        rj.event_at = None;
        let q = rj.in_flight.take().expect("an event implies an in-flight quantum");
        rj.remaining -= q.steps;
        rj.time_s += q.time_s;
        rj.energy_j += q.energy_j;
        let newly_degraded = q.degraded && !rj.degraded;
        if newly_degraded {
            rj.degraded = true;
        }
        let node = rj.node;
        let draining = self.draining.contains_key(&node);

        if rj.remaining == 0 {
            let rj = self.running.remove(&job).expect("present above");
            let status = if rj.degraded { RunStatus::Degraded } else { RunStatus::Ok };
            self.emit(TraceEvent::JobCompleted {
                job,
                tenant: rj.spec.tenant.clone(),
                node: rj.node,
                status: status.to_string(),
                time_s: rj.time_s,
                energy_j: rj.energy_j,
            });
            if let Some(at) = self.submit_us.remove(&job) {
                // Seconds-differenced to match trace replay bitwise (see
                // the queue-wait sample in `place`).
                let turn_s = (self.now_us as f64 / 1e6 - at as f64 / 1e6).max(0.0);
                self.metrics.turnaround_s.record(turn_s);
                self.metrics.tenant(&rj.spec.tenant).turnaround.record(turn_s);
            }
            let line = event_line(
                self.now_s(),
                telemetry::fmt_completed(job, &rj.spec.tenant, &status.to_string(), rj.time_s),
            );
            push_event(&mut self.event_pane, line);
            self.completed.insert(
                job,
                CompletedJob {
                    job,
                    tenant: rj.spec.tenant,
                    node: rj.node,
                    status,
                    time_s: rj.time_s,
                    energy_j: rj.energy_j,
                },
            );
            if draining {
                self.node_goes_down(node);
                self.reallocate("node-drained");
            } else {
                self.free_nodes.insert(node);
                self.reallocate("completed");
            }
            self.schedule();
        } else if draining {
            let rj = self.running.remove(&job).expect("present above");
            self.emit(TraceEvent::JobRequeued {
                job,
                tenant: rj.spec.tenant.clone(),
                node,
                attempt: rj.attempts,
                backoff_s: 0.0,
            });
            self.requeues += 1;
            self.metrics.requeues.inc();
            *self.tenant_requeued.entry(rj.spec.tenant.clone()).or_insert(0) += 1;
            let line =
                event_line(self.now_s(), telemetry::fmt_requeued(job, &rj.spec.tenant, node, 0.0));
            push_event(&mut self.event_pane, line);
            self.queue.push_back(job);
            self.queued.insert(
                job,
                QueuedJob {
                    spec: rj.spec,
                    remaining: rj.remaining,
                    time_s: rj.time_s,
                    energy_j: rj.energy_j,
                    degraded: rj.degraded,
                    attempts: rj.attempts,
                    requeued: true,
                },
            );
            self.node_goes_down(node);
            self.reallocate("node-drained");
            self.schedule();
        } else {
            if newly_degraded {
                // The job stops earning surplus; hand its share back.
                self.reallocate("degraded");
            }
            self.start_quantum(job);
        }
    }

    /// A scheduled fleet outage strikes `node`. A crash evicts the
    /// victim mid-quantum (its in-flight progress is lost and a retry is
    /// spent); a drain lets the victim finish its quantum first. Either
    /// way the node leaves the pool until its recovery event — if any —
    /// fires.
    fn node_fail(&mut self, node: u64, class: NodeFaultClass, down_us: Option<u64>) {
        // A drain's real outage starts at the victim's quantum end, so
        // it can outlive the plan's nominal window and overlap the next
        // scheduled fault: a node already out just absorbs the hit.
        if self.down_nodes.contains_key(&node) || self.draining.contains_key(&node) {
            return;
        }
        let victim = self.running.iter().find(|(_, rj)| rj.node == node).map(|(&j, _)| j);
        self.emit(TraceEvent::NodeFailed {
            node,
            class: class.label().to_string(),
            permanent: down_us.is_none(),
            victim,
        });
        self.metrics.node_failures.inc();
        let line = event_line(
            self.now_s(),
            telemetry::fmt_node_failed(node, class.label(), down_us.is_none(), victim),
        );
        push_event(&mut self.event_pane, line);

        match (victim, class) {
            (None, _) => {
                // The node was free: it just leaves the pool.
                self.free_nodes.remove(&node);
                self.down_nodes.insert(node, self.now_us);
                if let Some(d) = down_us {
                    self.events.insert((self.now_us + d, EV_RECOVER, node), Ev::Recover);
                }
            }
            (Some(_), NodeFaultClass::Drain) => {
                // Graceful: the victim finishes its quantum, then
                // requeues free; the node goes down at that boundary.
                self.draining.insert(node, down_us);
            }
            (Some(job), NodeFaultClass::Crash) => {
                let mut rj = self.running.remove(&job).expect("victim is running");
                if let Some(at) = rj.event_at.take() {
                    self.events.remove(&(at, EV_QUANTUM, job));
                }
                // The in-flight quantum dies with the node: completed
                // quanta stay banked, this one is re-run elsewhere.
                rj.in_flight = None;
                self.down_nodes.insert(node, self.now_us);
                if let Some(d) = down_us {
                    self.events.insert((self.now_us + d, EV_RECOVER, node), Ev::Recover);
                }
                if rj.attempts > self.cfg.max_retries {
                    self.fail_job(
                        job,
                        rj.spec.tenant.clone(),
                        format!(
                            "retry budget exhausted: {} placements all lost their node",
                            rj.attempts
                        ),
                        rj.attempts,
                    );
                } else {
                    // Deterministic exponential backoff, doubling per
                    // consumed placement, capped at 64× the base.
                    let backoff_s = self.cfg.backoff_base_s
                        * 2f64.powi((rj.attempts.saturating_sub(1)).min(6) as i32);
                    self.emit(TraceEvent::JobRequeued {
                        job,
                        tenant: rj.spec.tenant.clone(),
                        node,
                        attempt: rj.attempts,
                        backoff_s,
                    });
                    self.requeues += 1;
                    self.metrics.requeues.inc();
                    *self.tenant_requeued.entry(rj.spec.tenant.clone()).or_insert(0) += 1;
                    let line = event_line(
                        self.now_s(),
                        telemetry::fmt_requeued(job, &rj.spec.tenant, node, backoff_s),
                    );
                    push_event(&mut self.event_pane, line);
                    let release_us = self.now_us + (backoff_s * 1e6).round().max(1.0) as u64;
                    self.events.insert((release_us, EV_RELEASE, job), Ev::Release);
                    self.parked.insert(
                        job,
                        QueuedJob {
                            spec: rj.spec,
                            remaining: rj.remaining,
                            time_s: rj.time_s,
                            energy_j: rj.energy_j,
                            degraded: rj.degraded,
                            attempts: rj.attempts,
                            requeued: true,
                        },
                    );
                }
                self.reallocate("node-failed");
                self.schedule();
            }
        }
    }

    /// A temporary outage ends: the node rejoins the fair-share pool.
    fn node_recover(&mut self, node: u64) {
        let since = self.down_nodes.remove(&node).expect("recovery for a node not down");
        // Seconds-differenced like every duration the replay rebuilds.
        let down_s = (self.now_us as f64 / 1e6 - since as f64 / 1e6).max(0.0);
        self.emit(TraceEvent::NodeRecovered { node, down_s });
        let line = event_line(self.now_s(), telemetry::fmt_node_recovered(node, down_s));
        push_event(&mut self.event_pane, line);
        self.free_nodes.insert(node);
        self.schedule();
    }

    /// A crash-requeued job finished its backoff: back into the FIFO.
    fn release(&mut self, job: u64) {
        let qj = self.parked.remove(&job).expect("release for a job not parked");
        self.queue.push_back(job);
        self.queued.insert(job, qj);
        self.schedule();
    }

    /// No event can ever fire again, yet jobs are queued: every node
    /// they could run on is permanently gone. Fail them typed so
    /// `submitted == completed + failed + shed + rejected` still holds.
    fn starve_stranded(&mut self) {
        while let Some(job) = self.queue.pop_front() {
            let qj = self.queued.remove(&job).expect("queued job has a spec");
            self.fail_job(
                job,
                qj.spec.tenant,
                "no surviving node can host the job".to_string(),
                qj.attempts,
            );
        }
    }

    fn fail_job(&mut self, job: u64, tenant: String, reason: String, attempts: u64) {
        self.emit(TraceEvent::JobFailed {
            job,
            tenant: tenant.clone(),
            reason: reason.clone(),
            attempts,
        });
        self.metrics.failed.inc();
        *self.tenant_failed.entry(tenant.clone()).or_insert(0) += 1;
        self.submit_us.remove(&job);
        let line = event_line(self.now_s(), telemetry::fmt_failed(job, &tenant, &reason));
        push_event(&mut self.event_pane, line);
        self.failed.insert(job, reason);
    }

    /// A drain completes: the victim's quantum ended, the node actually
    /// leaves service now (its recovery clock starts here, not at the
    /// nominal fault time).
    fn node_goes_down(&mut self, node: u64) {
        let down_us = self.draining.remove(&node).expect("node was draining");
        self.down_nodes.insert(node, self.now_us);
        if let Some(d) = down_us {
            self.events.insert((self.now_us + d, EV_RECOVER, node), Ev::Recover);
        }
    }

    /// Drain every event — run all admitted jobs to completion.
    pub fn run_until_idle(&mut self) {
        while self.step() {}
    }

    /// Place queued jobs onto free nodes, FIFO (no skipping: a large job
    /// at the head waits rather than being starved by smaller ones
    /// slipping past it). Newly placed jobs trigger one `scheduled`
    /// reallocation and start their first quantum.
    fn schedule(&mut self) {
        let mut placed = Vec::new();
        while let Some(&job) = self.queue.front() {
            let spec = &self.queued[&job].spec;
            let requested = spec.floor_w.unwrap_or(0.0).max(0.0);
            let committed: f64 = self.running.values().map(|r| r.floor_w).sum();
            let node = self.free_nodes.iter().copied().find(|id| {
                let n = self.fleet.node(*id).expect("free node exists");
                requested <= n.max_cap_w() + EPS_W
                    && committed + requested.max(n.min_cap_w()) <= self.cfg.budget_w + EPS_W
            });
            let Some(node) = node else { break };
            self.place(job, node);
            placed.push(job);
        }
        if !placed.is_empty() {
            self.reallocate("scheduled");
            for job in placed {
                self.start_quantum(job);
            }
        }
    }

    /// Bind a job to a node: build its persistent executor (shared
    /// model cache, cap handle at the floor, optional fault plan) and
    /// tuner. The final allocation lands in the `scheduled`
    /// reallocation that follows.
    fn place(&mut self, job: u64, node_id: u64) {
        self.queue.pop_front();
        let qj = self.queued.remove(&job).expect("queued job has a spec");
        let spec = qj.spec;
        let node = self.fleet.node(node_id).expect("placing on a fleet node").clone();
        let floor_w = spec.floor_w.unwrap_or(0.0).max(node.min_cap_w());
        let mut wl = resolve_workload(&spec.workload).expect("admission resolved the workload");
        if spec.timesteps > 0 {
            wl.timesteps = spec.timesteps;
        }
        // A requeued job resumes at its last completed quantum boundary;
        // a fresh one starts from the workload's full length.
        let remaining = if qj.requeued { qj.remaining } else { wl.timesteps };

        let handle = CapHandle::new(node.package_cap_w(floor_w));
        let mut exec = SimExecutor::new(node.machine.clone(), node.package_cap_w(floor_w))
            .with_shared_cache(Arc::clone(&node.cache))
            .with_cap_handle(handle.clone());
        let mut resilience = self.cfg.resilience;
        if let Some(seed) = spec.fault_seed {
            exec = exec.with_faults(FaultPlan::flaky_rapl(seed));
            // A faulted job without a self-healing ladder would turn
            // hard meter faults into run errors; force the standard one.
            resilience = Some(resilience.unwrap_or_else(ResilienceOptions::standard));
        }
        let tuner = RegionTuner::new(TunerOptions::online(ConfigSpace::for_machine(&node.machine)));

        self.emit(TraceEvent::JobScheduled {
            job,
            tenant: spec.tenant.clone(),
            node: node_id,
            cap_w: floor_w,
        });
        if !qj.requeued {
            // Queue wait is the *first* placement's wait — a requeued
            // job already paid it (replay applies the same rule).
            if let Some(&at) = self.submit_us.get(&job) {
                // Differenced in seconds (not µs) so the sample is
                // bitwise identical to what a trace replay reconstructs
                // from the emitted `t_s` timestamps.
                let wait_s = (self.now_us as f64 / 1e6 - at as f64 / 1e6).max(0.0);
                self.metrics.queue_wait_s.record(wait_s);
                self.metrics.tenant(&spec.tenant).wait.record(wait_s);
            }
        }
        let line =
            event_line(self.now_s(), telemetry::fmt_scheduled(job, &spec.tenant, node_id, floor_w));
        push_event(&mut self.event_pane, line);
        self.free_nodes.remove(&node_id);
        self.running.insert(
            job,
            RunningJob {
                spec,
                node: node_id,
                floor_w,
                alloc_w: floor_w,
                max_w: node.max_cap_w(),
                handle,
                exec,
                tuner,
                wl,
                resilience,
                remaining,
                time_s: qj.time_s,
                energy_j: qj.energy_j,
                degraded: qj.degraded,
                in_flight: None,
                event_at: None,
                attempts: qj.attempts + 1,
            },
        );
    }

    /// Simulate one quantum for `job` now and schedule its completion
    /// event at `now + quantum duration` (virtual time).
    fn start_quantum(&mut self, job: u64) {
        let quantum = self.cfg.quantum_timesteps.max(1);
        let rj = self.running.get_mut(&job).expect("quantum for a running job");
        let steps = rj.remaining.min(quantum);
        rj.wl.timesteps = steps;
        let mut runner = Runner::new(&mut rj.exec).workload(&rj.wl).tuner(&mut rj.tuner);
        if let Some(res) = rj.resilience {
            runner = runner.resilience(res);
        }
        let report = runner.run().expect("a resilient simulated quantum cannot error");
        let dur_us = (report.time_s * 1e6).round().max(1.0) as u64;
        rj.in_flight = Some(QuantumResult {
            steps,
            time_s: report.time_s,
            energy_j: report.energy_j,
            degraded: report.status == RunStatus::Degraded,
        });
        let at = self.now_us + dur_us;
        rj.event_at = Some(at);
        self.events.insert((at, EV_QUANTUM, job), Ev::Quantum);
    }

    /// Redistribute the global budget across running jobs: floors
    /// first, then weighted-fair water-filling of the surplus (see
    /// module docs). Emits [`TraceEvent::CapReallocated`] and moves the
    /// cap handles of every job whose allocation changed.
    fn reallocate(&mut self, reason: &str) {
        // Per-tenant running-job counts split each tenant's weight.
        let mut tenant_jobs: BTreeMap<&str, f64> = BTreeMap::new();
        for rj in self.running.values() {
            *tenant_jobs.entry(rj.spec.tenant.as_str()).or_insert(0.0) += 1.0;
        }
        let mut alloc: BTreeMap<u64, f64> = BTreeMap::new();
        let mut weight: BTreeMap<u64, f64> = BTreeMap::new();
        let mut unsat: BTreeSet<u64> = BTreeSet::new();
        for (&job, rj) in &self.running {
            alloc.insert(job, rj.floor_w);
            if !rj.degraded && rj.max_w > rj.floor_w + EPS_W {
                let w = self.tenants.get(&rj.spec.tenant).copied().unwrap_or(1.0)
                    / tenant_jobs[rj.spec.tenant.as_str()];
                weight.insert(job, w);
                unsat.insert(job);
            }
        }

        // Water-fill: each round shares the remaining surplus by weight;
        // jobs that hit their node maximum leave the pool and their
        // leftover flows to the next round. Terminates because a round
        // either saturates somebody or distributes everything.
        loop {
            let used: f64 = alloc.values().sum();
            let surplus = self.cfg.budget_w - used;
            if surplus <= ALLOC_QUANTUM_W / 2.0 || unsat.is_empty() {
                break;
            }
            let total_weight: f64 = unsat.iter().map(|j| weight[j]).sum();
            let mut saturated = false;
            for job in unsat.clone() {
                let give = surplus * weight[&job] / total_weight;
                let max = self.running[&job].max_w;
                let a = alloc.get_mut(&job).expect("allocated above");
                if *a + give >= max - EPS_W {
                    *a = max;
                    unsat.remove(&job);
                    saturated = true;
                } else {
                    *a += give;
                }
            }
            if !saturated {
                break;
            }
        }

        // Quantize the surplus part down so Σ never creeps past the
        // budget and per-cap cache keys stay coarse.
        for (job, a) in alloc.iter_mut() {
            let floor = self.running[job].floor_w;
            *a = floor + ((*a - floor) / ALLOC_QUANTUM_W).floor() * ALLOC_QUANTUM_W;
        }

        let total_w: f64 = alloc.values().sum();
        let allocations: Vec<JobAllocation> = alloc
            .iter()
            .map(|(&job, &cap_w)| JobAllocation { job, node: self.running[&job].node, cap_w })
            .collect();
        let mut churn_w = 0.0;
        for (job, &cap_w) in &alloc {
            let rj = self.running.get_mut(job).expect("allocated jobs are running");
            if (rj.alloc_w - cap_w).abs() > EPS_W {
                churn_w += (rj.alloc_w - cap_w).abs();
                rj.alloc_w = cap_w;
                let sockets = self.fleet.node(rj.node).expect("job node exists").machine.sockets;
                rj.handle.set(cap_w / sockets as f64);
            }
        }
        self.metrics.reallocations.inc();
        self.metrics.realloc_churn_w.record(churn_w);
        // Per-tenant allocated-watts gauges: recompute every tenant's sum
        // (tenants with nothing running drop to 0).
        let mut by_tenant: BTreeMap<&str, f64> = BTreeMap::new();
        for rj in self.running.values() {
            *by_tenant.entry(rj.spec.tenant.as_str()).or_insert(0.0) += rj.alloc_w;
        }
        for (name, handles) in &self.metrics.tenants {
            handles.alloc_w.set(by_tenant.get(name.as_str()).copied().unwrap_or(0.0));
        }
        let line = event_line(
            self.now_s(),
            telemetry::fmt_realloc(reason, total_w, self.cfg.budget_w, allocations.len()),
        );
        push_event(&mut self.event_pane, line);
        self.emit(TraceEvent::CapReallocated {
            reason: reason.to_string(),
            budget_w: self.cfg.budget_w,
            total_w,
            allocations,
        });
    }

    /// One dashboard frame of the broker's current state (see
    /// [`TelemetrySnapshot`]). SLO digests read the same registry series
    /// the Prometheus exposition renders.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        let mut tenants: BTreeMap<String, TenantTelemetry> = BTreeMap::new();
        for (name, &weight) in &self.tenants {
            let handles = self.metrics.tenants.get(name);
            tenants.insert(
                name.clone(),
                TenantTelemetry {
                    weight,
                    queued: 0,
                    running: 0,
                    completed: 0,
                    degraded: 0,
                    rejected: self.tenant_rejected.get(name).copied().unwrap_or(0),
                    failed: self.tenant_failed.get(name).copied().unwrap_or(0),
                    shed: self.tenant_shed.get(name).copied().unwrap_or(0),
                    requeued: self.tenant_requeued.get(name).copied().unwrap_or(0),
                    alloc_w: 0.0,
                    fair_share_w: 0.0,
                    queue_wait: handles.map(|h| Digest::from(&h.wait)).unwrap_or_default(),
                    turnaround: handles.map(|h| Digest::from(&h.turnaround)).unwrap_or_default(),
                },
            );
        }
        for qj in self.queued.values().chain(self.parked.values()) {
            if let Some(t) = tenants.get_mut(&qj.spec.tenant) {
                t.queued += 1;
            }
        }
        for rj in self.running.values() {
            if let Some(t) = tenants.get_mut(&rj.spec.tenant) {
                t.running += 1;
                t.alloc_w += rj.alloc_w;
                if rj.degraded {
                    t.degraded += 1;
                }
            }
        }
        for done in self.completed.values() {
            if let Some(t) = tenants.get_mut(&done.tenant) {
                t.completed += 1;
                if done.status == RunStatus::Degraded {
                    t.degraded += 1;
                }
            }
        }
        let c = self.counters();
        let mut snap = TelemetrySnapshot {
            now_s: self.now_s(),
            budget_w: self.cfg.budget_w,
            // `+ 0.0` normalises the empty sum's `-0.0` so idle frames
            // serialize as `0`, matching the replay reconstruction.
            allocated_w: self.running.values().map(|r| r.alloc_w).sum::<f64>() + 0.0,
            submitted: c.submitted,
            queued: c.queued,
            running: c.running,
            completed: c.completed,
            rejected: c.rejected,
            degraded: c.degraded,
            failed: c.failed,
            shed: c.shed,
            requeued: c.requeued,
            nodes_down: c.nodes_down,
            queue_wait: Digest::from(&self.metrics.queue_wait_s),
            turnaround: Digest::from(&self.metrics.turnaround_s),
            realloc_churn_w: Digest::from(&self.metrics.realloc_churn_w),
            tenants,
            events: self.event_pane.iter().cloned().collect(),
        };
        snap.compute_fair_shares();
        snap
    }

    /// Subscribe to telemetry frames: one immediately, then one every
    /// `every` quantum events (clamped to ≥ 1). The subscription dies
    /// silently when the receiver hangs up.
    pub fn watch(&mut self, every: u64, tx: Sender<TelemetrySnapshot>) {
        let every = every.max(1);
        if tx.send(self.telemetry()).is_ok() {
            self.watchers.push(Watcher { tx, every, seen: 0 });
        }
    }

    fn notify_watchers(&mut self) {
        if self.watchers.is_empty() {
            return;
        }
        let mut due = false;
        for w in &mut self.watchers {
            w.seen += 1;
            if w.seen % w.every == 0 {
                due = true;
            }
        }
        if !due {
            return;
        }
        let snap = self.telemetry();
        self.watchers.retain(|w| w.seen % w.every != 0 || w.tx.send(snap.clone()).is_ok());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arcs_powersim::Machine;
    use arcs_trace::{TraceRecord, VecSink};

    fn small_broker(budget_w: f64, nodes: usize, sink: Arc<VecSink>) -> Broker {
        let fleet = Fleet::homogeneous(Machine::crill(), nodes);
        let mut cfg = BrokerConfig::new(budget_w);
        cfg.quantum_timesteps = 2;
        Broker::new(fleet, cfg, sink)
    }

    fn spec(tenant: &str) -> JobSpec {
        JobSpec::new(tenant, "sp.S").timesteps(4)
    }

    fn conservation_holds(records: &[TraceRecord]) {
        let mut seen = 0;
        for r in records {
            if let TraceEvent::CapReallocated { budget_w, total_w, allocations, .. } = &r.event {
                let sum: f64 = allocations.iter().map(|a| a.cap_w).sum();
                assert!((sum - total_w).abs() < 1e-6, "total_w must equal Σ allocations");
                assert!(*total_w <= budget_w + 1e-6, "Σ {total_w} over budget {budget_w}");
                seen += 1;
            }
        }
        assert!(seen > 0, "the trace must carry reallocation points");
    }

    #[test]
    fn jobs_complete_and_the_budget_is_conserved() {
        let sink = Arc::new(VecSink::new());
        let mut broker = small_broker(400.0, 2, Arc::clone(&sink));
        let a = broker.submit(spec("acme"));
        let b = broker.submit(spec("acme"));
        let c = broker.submit(spec("umbrella"));
        assert!(matches!(a, SubmitOutcome::Admitted(0)));
        assert!(matches!(b, SubmitOutcome::Admitted(1)));
        // Two nodes: the third job queues until one finishes.
        assert_eq!(broker.job_state(c.job()), Some(JobState::Queued));

        broker.run_until_idle();
        assert!(broker.is_idle());
        let counters = broker.counters();
        assert_eq!(counters.completed, 3);
        assert_eq!(counters.rejected, 0);
        assert_eq!(counters.queued, 0);
        for job in [0, 1, 2] {
            assert_eq!(broker.job_state(job), Some(JobState::Completed));
            let done = &broker.completed_jobs()[&job];
            assert_eq!(done.status, RunStatus::Ok);
            assert!(done.time_s > 0.0 && done.energy_j > 0.0);
        }
        conservation_holds(&sink.drain());
    }

    #[test]
    fn inadmissible_jobs_are_rejected_with_a_reason() {
        let sink = Arc::new(VecSink::new());
        let mut broker = small_broker(400.0, 2, Arc::clone(&sink));
        // Crill nodes top out at 230 W: a 500 W floor fits no node.
        let over_node = broker.submit(spec("acme").floor_w(500.0));
        let SubmitOutcome::Rejected { reason, .. } = &over_node else {
            panic!("500 W floor must be rejected")
        };
        assert!(reason.contains("every node"), "{reason}");

        // 200 W fits a node but exceeds a 150 W budget.
        let mut tight = small_broker(150.0, 2, Arc::new(VecSink::new()));
        let over_budget = tight.submit(spec("acme").floor_w(200.0));
        let SubmitOutcome::Rejected { reason, .. } = &over_budget else {
            panic!("a floor above the budget must be rejected")
        };
        assert!(reason.contains("global budget"), "{reason}");

        let unknown = broker.submit(JobSpec::new("acme", "nope.S"));
        assert!(matches!(unknown, SubmitOutcome::Rejected { .. }));

        // Rejections are queryable and traced; admitted work is unharmed.
        assert_eq!(broker.job_state(over_node.job()), Some(JobState::Rejected));
        assert!(broker.rejection_reason(over_node.job()).is_some());
        let ok = broker.submit(spec("acme"));
        broker.run_until_idle();
        assert_eq!(broker.job_state(ok.job()), Some(JobState::Completed));
        let records = sink.drain();
        let rejections =
            records.iter().filter(|r| matches!(r.event, TraceEvent::JobRejected { .. })).count();
        assert_eq!(rejections, 2);
    }

    #[test]
    fn tenant_weights_shape_the_surplus_split() {
        let sink = Arc::new(VecSink::new());
        // Budget 300 over two crill nodes: floors 57.5 + 57.5, surplus
        // 185 split 2:1 → heavy ≈ 180.8, light ≈ 119.2 (both < 230 max).
        let mut broker = small_broker(300.0, 2, Arc::clone(&sink));
        broker.submit(spec("heavy").weight(2.0));
        broker.submit(spec("light").weight(1.0));
        let records_mid: Vec<_> = sink.drain();
        let last_realloc = records_mid
            .iter()
            .rev()
            .find_map(|r| match &r.event {
                TraceEvent::CapReallocated { allocations, .. } => Some(allocations.clone()),
                _ => None,
            })
            .expect("scheduling reallocates");
        assert_eq!(last_realloc.len(), 2);
        let heavy = last_realloc.iter().find(|a| a.job == 0).unwrap().cap_w;
        let light = last_realloc.iter().find(|a| a.job == 1).unwrap().cap_w;
        let heavy_extra = heavy - 57.5;
        let light_extra = light - 57.5;
        assert!(
            (heavy_extra / light_extra - 2.0).abs() < 0.02,
            "surplus must split ≈2:1, got {heavy_extra}:{light_extra}"
        );
        assert!(heavy + light <= 300.0 + 1e-6);
        broker.run_until_idle();
    }

    #[test]
    fn degraded_jobs_are_pinned_to_their_floor() {
        let sink = Arc::new(VecSink::new());
        let mut broker = small_broker(460.0, 2, Arc::clone(&sink));
        // Job 0 runs under a flaky meter with a zero error budget: the
        // first absorbed hard fault degrades it.
        let mut res = ResilienceOptions::standard();
        res.max_read_retries = 0;
        res.error_budget = Some(0);
        broker.cfg.resilience = Some(res);
        broker.submit(spec("faulty").fault_seed(7).timesteps(8));
        broker.submit(spec("clean").timesteps(8));
        broker.run_until_idle();

        let done = broker.completed_jobs();
        assert_eq!(done[&0].status, RunStatus::Degraded);
        assert_eq!(done[&1].status, RunStatus::Ok);

        let records = sink.drain();
        let degraded_realloc = records
            .iter()
            .find_map(|r| match &r.event {
                TraceEvent::CapReallocated { reason, allocations, .. } if reason == "degraded" => {
                    Some(allocations.clone())
                }
                _ => None,
            })
            .expect("degradation must trigger a reallocation");
        let pinned = degraded_realloc.iter().find(|a| a.job == 0).unwrap();
        assert!(
            (pinned.cap_w - 57.5).abs() < 1e-9,
            "degraded job must hold exactly its floor, got {}",
            pinned.cap_w
        );
        // The clean job inherits the freed surplus, up to its node max.
        let clean = degraded_realloc.iter().find(|a| a.job == 1).unwrap();
        assert!((clean.cap_w - 230.0).abs() < 1e-9, "got {}", clean.cap_w);
        conservation_holds(&records);
    }

    #[test]
    fn same_submissions_produce_byte_identical_traces() {
        let run = || {
            let sink = Arc::new(VecSink::new());
            let mut broker = small_broker(350.0, 2, Arc::clone(&sink));
            broker.submit(spec("acme").fault_seed(3));
            broker.submit(spec("umbrella"));
            broker.submit(spec("acme"));
            broker.submit(spec("umbrella").floor_w(9000.0)); // rejected
            broker.run_until_idle();
            sink.drain()
                .iter()
                .map(|r| serde_json::to_string(r).unwrap())
                .collect::<Vec<_>>()
                .join("\n")
        };
        let first = run();
        assert_eq!(first, run(), "broker runs must be deterministic");
        assert!(first.contains("JobRejected"));
        assert!(first.contains("JobCompleted"));
    }

    /// The conservation identity every run must close with:
    /// `submitted == completed + failed + shed + rejected` at idle.
    fn zero_lost(broker: &Broker) {
        let c = broker.counters();
        assert!(broker.is_idle(), "identity only holds at idle");
        assert_eq!(c.submitted, c.completed + c.failed + c.shed + c.rejected, "jobs lost: {c:?}");
    }

    /// How long one `spec("t")` job takes alone on a crill node — used
    /// to time fault injection relative to real quantum durations.
    fn probe_runtime_s(timesteps: usize) -> f64 {
        let mut broker = small_broker(230.0, 1, Arc::new(VecSink::new()));
        broker.submit(spec("probe").timesteps(timesteps));
        broker.run_until_idle();
        broker.completed_jobs()[&0].time_s
    }

    #[test]
    fn a_crash_requeues_the_victim_and_it_still_completes() {
        let total = probe_runtime_s(8);
        let run = |sink: Arc<VecSink>| {
            let fleet = Fleet::homogeneous(Machine::crill(), 1);
            let mut cfg = BrokerConfig::new(230.0);
            cfg.quantum_timesteps = 2;
            // One crash ≈ 30% into the job, healed well before the end.
            cfg.node_faults = Some(NodeFaultPlan {
                seed: 11,
                start_s: total * 0.3,
                mtbf_s: 1e-3,
                mttr_s: total * 0.1,
                max_faults_per_node: 1,
                ..NodeFaultPlan::default()
            });
            let mut broker = Broker::new(fleet, cfg, sink);
            broker.submit(spec("acme").timesteps(8));
            broker.run_until_idle();
            broker
        };
        let sink = Arc::new(VecSink::new());
        let broker = run(sink.clone());
        zero_lost(&broker);
        let c = broker.counters();
        assert_eq!(c.completed, 1, "the victim must finish after requeue: {c:?}");
        assert!(c.requeued >= 1, "the crash must have requeued the victim");
        let records = sink.drain();
        let kinds: Vec<&str> = records.iter().map(|r| r.event.kind()).collect();
        assert!(kinds.contains(&"NodeFailed"));
        assert!(kinds.contains(&"NodeRecovered"));
        assert!(kinds.contains(&"JobRequeued"));
        let crash_pos = kinds.iter().position(|k| *k == "NodeFailed").unwrap();
        let done_pos = kinds.iter().rposition(|k| *k == "JobCompleted").unwrap();
        assert!(crash_pos < done_pos, "completion happens after the crash");
        conservation_holds(&records);

        // And the whole faulted run is deterministic, byte for byte.
        let to_text = |records: &[TraceRecord]| {
            records.iter().map(|r| serde_json::to_string(r).unwrap()).collect::<Vec<_>>().join("\n")
        };
        let again = Arc::new(VecSink::new());
        run(again.clone());
        assert_eq!(to_text(&records), to_text(&again.drain()));
    }

    #[test]
    fn retry_budget_exhaustion_fails_typed() {
        let total = probe_runtime_s(8);
        let sink = Arc::new(VecSink::new());
        let fleet = Fleet::homogeneous(Machine::crill(), 1);
        let mut cfg = BrokerConfig::new(230.0);
        cfg.quantum_timesteps = 2;
        cfg.max_retries = 0; // the first crash is fatal
        cfg.node_faults = Some(NodeFaultPlan {
            seed: 5,
            start_s: total * 0.3,
            mtbf_s: 1e-3,
            mttr_s: total * 0.1,
            max_faults_per_node: 1,
            ..NodeFaultPlan::default()
        });
        let mut broker = Broker::new(fleet, cfg, sink.clone());
        broker.submit(spec("acme").timesteps(8));
        broker.run_until_idle();
        zero_lost(&broker);
        let c = broker.counters();
        assert_eq!((c.completed, c.failed), (0, 1), "{c:?}");
        assert_eq!(broker.job_state(0), Some(JobState::Failed));
        assert!(broker.rejection_reason(0).unwrap().contains("retry budget"));
        let records = sink.drain();
        assert!(records
            .iter()
            .any(|r| matches!(&r.event, TraceEvent::JobFailed { job: 0, attempts: 1, .. })));
    }

    #[test]
    fn stranded_jobs_fail_typed_when_no_node_survives() {
        let sink = Arc::new(VecSink::new());
        let fleet = Fleet::homogeneous(Machine::crill(), 1);
        let mut cfg = BrokerConfig::new(230.0);
        cfg.quantum_timesteps = 2;
        // The only node dies permanently before any work is submitted.
        cfg.node_faults = Some(NodeFaultPlan {
            seed: 3,
            start_s: 0.0,
            mtbf_s: 1e-3,
            permanent_rate: 1.0,
            max_faults_per_node: 1,
            ..NodeFaultPlan::default()
        });
        let mut broker = Broker::new(fleet, cfg, sink.clone());
        broker.step(); // the permanent outage fires
        broker.submit(spec("acme"));
        broker.submit(spec("umbrella"));
        broker.run_until_idle();
        zero_lost(&broker);
        let c = broker.counters();
        assert_eq!(c.failed, 2, "{c:?}");
        for job in [0, 1] {
            assert_eq!(broker.job_state(job), Some(JobState::Failed));
            assert!(broker.rejection_reason(job).unwrap().contains("no surviving node"));
        }
        let records = sink.drain();
        assert!(records
            .iter()
            .any(|r| matches!(&r.event, TraceEvent::NodeFailed { permanent: true, .. })));
    }

    #[test]
    fn a_full_queue_sheds_with_a_backpressure_hint() {
        let sink = Arc::new(VecSink::new());
        let fleet = Fleet::homogeneous(Machine::crill(), 1);
        let mut cfg = BrokerConfig::new(230.0);
        cfg.quantum_timesteps = 2;
        cfg.max_queue = Some(1);
        let mut broker = Broker::new(fleet, cfg, sink.clone());
        broker.submit(spec("acme")); // runs
        broker.submit(spec("acme")); // queues (depth 1 = max)
        let third = broker.submit(spec("late"));
        let SubmitOutcome::Shed { job, reason, retry_after_s, queue_depth } = third else {
            panic!("the third job must be shed, got {third:?}")
        };
        assert_eq!(job, 2);
        assert_eq!(queue_depth, 1);
        assert!(reason.contains("queue full"), "{reason}");
        assert!(retry_after_s > 0.0, "the hint must be actionable");
        assert_eq!(broker.job_state(2), Some(JobState::Shed));
        broker.run_until_idle();
        zero_lost(&broker);
        let c = broker.counters();
        assert_eq!((c.completed, c.shed), (2, 1), "{c:?}");
        let records = sink.drain();
        assert!(records.iter().any(|r| matches!(r.event, TraceEvent::JobShed { job: 2, .. })));
        // Shed jobs still count as submitted in the trace.
        let submitted =
            records.iter().filter(|r| matches!(r.event, TraceEvent::JobSubmitted { .. })).count();
        assert_eq!(submitted, 3);
    }

    #[test]
    fn journal_replay_reconstructs_the_exact_broker() {
        let dir = std::env::temp_dir().join(format!("arcs-serve-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let journal_path = dir.join("broker.journal.jsonl");

        // Drive a faulted broker through an explicit op sequence,
        // journaling every op.
        let ops = |broker: &mut Broker| {
            broker.submit(spec("acme").timesteps(8));
            broker.submit(spec("umbrella"));
            for _ in 0..3 {
                broker.step();
            }
            broker.submit(spec("acme").fault_seed(9));
            while broker.step() {}
        };
        let sink = Arc::new(VecSink::new());
        let fleet = Fleet::homogeneous(Machine::crill(), 2);
        let mut cfg = BrokerConfig::new(400.0);
        cfg.quantum_timesteps = 2;
        cfg.node_faults = Some(NodeFaultPlan::node_flap(7));
        let mut original = Broker::new(fleet, cfg, sink.clone());
        original.attach_journal(BrokerJournal::create(&journal_path).unwrap());
        ops(&mut original);
        assert!(original.journal_error().is_none());

        // Recover from the journal alone: same counters, and the
        // replayed trace is record-for-record identical.
        let rec_sink = Arc::new(VecSink::new());
        let recovered = Broker::recover(&journal_path, rec_sink.clone(), None).unwrap();
        assert_eq!(recovered.counters(), original.counters());
        assert_eq!(recovered.now_s(), original.now_s());
        let to_text = |records: &[TraceRecord]| {
            records.iter().map(|r| serde_json::to_string(r).unwrap()).collect::<Vec<_>>().join("\n")
        };
        assert_eq!(to_text(&sink.drain()), to_text(&rec_sink.drain()));
        assert_eq!(
            recovered.completed_jobs().keys().collect::<Vec<_>>(),
            original.completed_jobs().keys().collect::<Vec<_>>()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_rejects_garbage_journals() {
        let dir =
            std::env::temp_dir().join(format!("arcs-serve-badjournal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let missing = dir.join("nope.jsonl");
        assert!(matches!(
            Broker::recover(&missing, Arc::new(VecSink::new()), None),
            Err(JournalError::Open(_))
        ));
        // A journal that does not start with a header is refused.
        let headerless = dir.join("headerless.jsonl");
        let sink = Arc::new(VecSink::new());
        let mut broker = small_broker(230.0, 1, Arc::clone(&sink));
        broker.submit(spec("acme"));
        broker.run_until_idle();
        let text = sink
            .drain()
            .iter()
            .map(|r| serde_json::to_string(r).unwrap() + "\n")
            .collect::<String>();
        std::fs::write(&headerless, text).unwrap();
        assert!(matches!(
            Broker::recover(&headerless, Arc::new(VecSink::new()), None),
            Err(JournalError::Header(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reallocations_reach_running_jobs_through_their_cap_handles() {
        // One node, budget exactly the node max: a solo job gets the
        // full 230 W; when a second job arrives nothing can be taken
        // (the other node is busy)... so use two nodes and watch the
        // first job's allocation shrink when the second schedules.
        let sink = Arc::new(VecSink::new());
        let mut broker = small_broker(300.0, 2, Arc::clone(&sink));
        broker.submit(spec("acme").timesteps(8));
        let solo_alloc = broker.running[&0].alloc_w;
        assert!((solo_alloc - 230.0).abs() < 1e-9, "solo job takes its node max, got {solo_alloc}");
        let solo_cap = broker.running[&0].handle.get();
        assert!((solo_cap - 115.0).abs() < 1e-9, "package cap is node watts / sockets");

        broker.submit(spec("umbrella").timesteps(8));
        let squeezed = broker.running[&0].alloc_w;
        assert!(squeezed < solo_alloc, "arrival must squeeze the incumbent");
        let squeezed_cap = broker.running[&0].handle.get();
        assert!((squeezed_cap - squeezed / 2.0).abs() < 1e-9);
        broker.run_until_idle();
        conservation_holds(&sink.drain());
    }
}
