//! `arcs-serve` — host the multi-tenant power-budget broker on TCP.
//!
//! ```text
//! arcs-serve [--port N] [--nodes N] [--machine crill|minotaur]
//!            [--budget WATTS] [--quantum TIMESTEPS] [--trace PATH]
//!            [--pool THREADS] [--journal PATH] [--recover PATH]
//!            [--max-queue N] [--max-retries N]
//!            [--node-faults PRESET[:SEED]|JSON]
//! ```
//!
//! Serves newline-delimited JSON (see `arcs_serve::protocol`) until a
//! client sends `{"op":"shutdown"}`; admitted jobs are drained before
//! the ack, and the broker trace (schema v9) is flushed to `--trace`.
//! Live telemetry is available over the same port: `{"op":"stats"}` for
//! one snapshot, `{"op":"metrics"}` for a Prometheus scrape, and
//! `{"op":"watch"}` for a continuous NDJSON stream (see `arcs-serve-top`
//! for a terminal dashboard over it).
//!
//! `--journal` write-ahead-logs every submission and step; after a
//! crash, `--recover <journal>` rebuilds the exact broker by replaying
//! it (fleet shape, budget, and fault plan come from the journal header,
//! so the fleet flags are ignored in that mode). `--node-faults` injects
//! a deterministic node-outage schedule: a preset name (`node-crash`,
//! `node-flap`, `node-drain`, optionally `:SEED`) or a full JSON plan.

use arcs_powersim::{Fleet, Machine, NodeFaultPlan};
use arcs_serve::{Broker, BrokerConfig, BrokerJournal, Server};
use arcs_trace::{JsonlSink, NullSink, TraceSink};
use std::path::Path;
use std::sync::Arc;

struct Args {
    port: u16,
    nodes: usize,
    machine: String,
    budget_w: Option<f64>,
    quantum: usize,
    trace: Option<String>,
    pool: usize,
    journal: Option<String>,
    recover: Option<String>,
    max_queue: Option<usize>,
    max_retries: Option<u64>,
    node_faults: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: arcs-serve [--port N] [--nodes N] [--machine crill|minotaur]\n\
         \x20                 [--budget WATTS] [--quantum TIMESTEPS] [--trace PATH]\n\
         \x20                 [--pool THREADS] [--journal PATH] [--recover PATH]\n\
         \x20                 [--max-queue N] [--max-retries N]\n\
         \x20                 [--node-faults PRESET[:SEED]|JSON]"
    );
    std::process::exit(2)
}

/// Parse `--node-faults`: a JSON `NodeFaultPlan` if the value starts
/// with `{`, otherwise a preset name with an optional `:SEED` suffix.
fn parse_node_faults(spec: &str) -> NodeFaultPlan {
    if spec.trim_start().starts_with('{') {
        return serde_json::from_str(spec).unwrap_or_else(|err| {
            eprintln!("bad --node-faults JSON: {err}");
            std::process::exit(2)
        });
    }
    let (name, seed) = match spec.split_once(':') {
        Some((name, seed)) => (
            name,
            seed.parse().unwrap_or_else(|_| {
                eprintln!("bad --node-faults seed {seed:?}");
                std::process::exit(2)
            }),
        ),
        None => (spec, 0),
    };
    NodeFaultPlan::by_name(name, seed).unwrap_or_else(|| {
        eprintln!("unknown node-fault preset {name:?} (node-crash, node-flap, node-drain)");
        std::process::exit(2)
    })
}

fn parse_args() -> Args {
    let mut args = Args {
        port: 0,
        nodes: 4,
        machine: "crill".into(),
        budget_w: None,
        quantum: 4,
        trace: None,
        pool: 4,
        journal: None,
        recover: None,
        max_queue: None,
        max_retries: None,
        node_faults: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--port" => args.port = value("--port").parse().unwrap_or_else(|_| usage()),
            "--nodes" => args.nodes = value("--nodes").parse().unwrap_or_else(|_| usage()),
            "--machine" => args.machine = value("--machine"),
            "--budget" => {
                args.budget_w = Some(value("--budget").parse().unwrap_or_else(|_| usage()))
            }
            "--quantum" => args.quantum = value("--quantum").parse().unwrap_or_else(|_| usage()),
            "--trace" => args.trace = Some(value("--trace")),
            "--pool" => args.pool = value("--pool").parse().unwrap_or_else(|_| usage()),
            "--journal" => args.journal = Some(value("--journal")),
            "--recover" => args.recover = Some(value("--recover")),
            "--max-queue" => {
                args.max_queue = Some(value("--max-queue").parse().unwrap_or_else(|_| usage()))
            }
            "--max-retries" => {
                args.max_retries = Some(value("--max-retries").parse().unwrap_or_else(|_| usage()))
            }
            "--node-faults" => args.node_faults = Some(value("--node-faults")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    // Kept concrete (not just `dyn TraceSink`) so the write-error
    // counter bridge below can reach the sink after broker attach.
    let jsonl: Option<Arc<JsonlSink<std::fs::File>>> = args.trace.as_ref().map(|path| {
        Arc::new(JsonlSink::create(path).unwrap_or_else(|err| {
            eprintln!("cannot open trace {path:?}: {err}");
            std::process::exit(1)
        }))
    });
    let sink: Arc<dyn TraceSink> = match &jsonl {
        Some(sink) => Arc::clone(sink) as Arc<dyn TraceSink>,
        None => Arc::new(NullSink),
    };
    let new_journal = args.journal.as_ref().map(|path| {
        BrokerJournal::create(Path::new(path)).unwrap_or_else(|err| {
            eprintln!("cannot open journal {path:?}: {err}");
            std::process::exit(1)
        })
    });

    let broker = if let Some(old) = &args.recover {
        // Recovery mode: the journal header carries the fleet shape,
        // budget, and fault plan — the fleet flags are ignored.
        match Broker::recover(Path::new(old), sink, new_journal) {
            Ok(broker) => {
                let c = broker.counters();
                println!(
                    "arcs-serve recovered from {old:?}: {} submitted, {} completed, {} failed",
                    c.submitted, c.completed, c.failed
                );
                broker
            }
            Err(err) => {
                eprintln!("cannot recover from {old:?}: {err}");
                std::process::exit(1)
            }
        }
    } else {
        let machine = match args.machine.as_str() {
            "crill" => Machine::crill(),
            "minotaur" => Machine::minotaur(),
            other => {
                eprintln!("unknown machine {other:?} (expected crill or minotaur)");
                std::process::exit(2)
            }
        };
        let fleet = Fleet::homogeneous(machine, args.nodes);
        // Default budget: enough to run every node at 75 % of its
        // maximum — tight enough that arbitration matters, loose enough
        // to admit any single-node job.
        let budget_w = args.budget_w.unwrap_or(fleet.total_max_cap_w() * 0.75);
        let mut cfg = BrokerConfig::new(budget_w);
        cfg.quantum_timesteps = args.quantum.max(1);
        cfg.max_queue = args.max_queue;
        if let Some(retries) = args.max_retries {
            cfg.max_retries = retries;
        }
        cfg.node_faults = args.node_faults.as_deref().map(parse_node_faults);
        let mut broker = Broker::new(fleet, cfg, sink);
        if let Some(journal) = new_journal {
            broker.attach_journal(journal);
        }
        println!(
            "arcs-serve fleet: {} × {} node(s), budget {:.1} W, quantum {}",
            args.nodes,
            args.machine,
            budget_w,
            args.quantum.max(1)
        );
        broker
    };

    if let Some(sink) = &jsonl {
        // A dying trace file now shows up in `metrics` scrapes as
        // `arcs/trace/write_errors`, not just on stderr at exit.
        sink.set_write_error_counter(broker.registry().counter("arcs/trace/write_errors").shared());
    }
    let handle = match Server::start(broker, &format!("127.0.0.1:{}", args.port), args.pool) {
        Ok(handle) => handle,
        Err(err) => {
            eprintln!("cannot bind 127.0.0.1:{}: {err}", args.port);
            std::process::exit(1)
        }
    };
    println!("arcs-serve listening on {}", handle.addr());
    // Park until a client-initiated shutdown stops the threads.
    handle.wait();
}
