//! `arcs-serve` — host the multi-tenant power-budget broker on TCP.
//!
//! ```text
//! arcs-serve [--port N] [--nodes N] [--machine crill|minotaur]
//!            [--budget WATTS] [--quantum TIMESTEPS] [--trace PATH]
//!            [--pool THREADS]
//! ```
//!
//! Serves newline-delimited JSON (see `arcs_serve::protocol`) until a
//! client sends `{"op":"shutdown"}`; admitted jobs are drained before
//! the ack, and the broker trace (schema v7) is flushed to `--trace`.
//! Live telemetry is available over the same port: `{"op":"stats"}` for
//! one snapshot, `{"op":"metrics"}` for a Prometheus scrape, and
//! `{"op":"watch"}` for a continuous NDJSON stream (see `arcs-serve-top`
//! for a terminal dashboard over it).

use arcs_powersim::{Fleet, Machine};
use arcs_serve::{Broker, BrokerConfig, Server};
use arcs_trace::{JsonlSink, NullSink, TraceSink};
use std::sync::Arc;

struct Args {
    port: u16,
    nodes: usize,
    machine: String,
    budget_w: Option<f64>,
    quantum: usize,
    trace: Option<String>,
    pool: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: arcs-serve [--port N] [--nodes N] [--machine crill|minotaur]\n\
         \x20                 [--budget WATTS] [--quantum TIMESTEPS] [--trace PATH]\n\
         \x20                 [--pool THREADS]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        port: 0,
        nodes: 4,
        machine: "crill".into(),
        budget_w: None,
        quantum: 4,
        trace: None,
        pool: 4,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--port" => args.port = value("--port").parse().unwrap_or_else(|_| usage()),
            "--nodes" => args.nodes = value("--nodes").parse().unwrap_or_else(|_| usage()),
            "--machine" => args.machine = value("--machine"),
            "--budget" => {
                args.budget_w = Some(value("--budget").parse().unwrap_or_else(|_| usage()))
            }
            "--quantum" => args.quantum = value("--quantum").parse().unwrap_or_else(|_| usage()),
            "--trace" => args.trace = Some(value("--trace")),
            "--pool" => args.pool = value("--pool").parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let machine = match args.machine.as_str() {
        "crill" => Machine::crill(),
        "minotaur" => Machine::minotaur(),
        other => {
            eprintln!("unknown machine {other:?} (expected crill or minotaur)");
            std::process::exit(2)
        }
    };
    let fleet = Fleet::homogeneous(machine, args.nodes);
    // Default budget: enough to run every node at 75 % of its maximum —
    // tight enough that arbitration matters, loose enough to admit any
    // single-node job.
    let budget_w = args.budget_w.unwrap_or(fleet.total_max_cap_w() * 0.75);
    // Kept concrete (not just `dyn TraceSink`) so the write-error
    // counter bridge below can reach the sink after broker attach.
    let jsonl: Option<Arc<JsonlSink<std::fs::File>>> = args.trace.as_ref().map(|path| {
        Arc::new(JsonlSink::create(path).unwrap_or_else(|err| {
            eprintln!("cannot open trace {path:?}: {err}");
            std::process::exit(1)
        }))
    });
    let sink: Arc<dyn TraceSink> = match &jsonl {
        Some(sink) => Arc::clone(sink) as Arc<dyn TraceSink>,
        None => Arc::new(NullSink),
    };

    let mut cfg = BrokerConfig::new(budget_w);
    cfg.quantum_timesteps = args.quantum.max(1);
    let broker = Broker::new(fleet, cfg, sink);
    if let Some(sink) = &jsonl {
        // A dying trace file now shows up in `metrics` scrapes as
        // `arcs/trace/write_errors`, not just on stderr at exit.
        sink.set_write_error_counter(broker.registry().counter("arcs/trace/write_errors").shared());
    }
    let handle = match Server::start(broker, &format!("127.0.0.1:{}", args.port), args.pool) {
        Ok(handle) => handle,
        Err(err) => {
            eprintln!("cannot bind 127.0.0.1:{}: {err}", args.port);
            std::process::exit(1)
        }
    };
    println!(
        "arcs-serve listening on {} ({} × {} node(s), budget {:.1} W, quantum {})",
        handle.addr(),
        args.nodes,
        args.machine,
        budget_w,
        args.quantum.max(1)
    );
    // Park until a client-initiated shutdown stops the threads.
    handle.wait();
}
