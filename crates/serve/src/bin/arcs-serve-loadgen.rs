//! `arcs-serve-loadgen` — deterministic multi-tenant load against the
//! broker, with built-in verification of the resulting trace.
//!
//! Three modes:
//!
//! ```text
//! arcs-serve-loadgen [--jobs N] [--tenants N] [--nodes N] [--machine M]
//!                    [--budget WATTS] [--seed S] [--quantum T]
//!                    [--reject-every N] [--fault-every N]
//!                    [--node-faults PRESET[:SEED]|JSON] [--shed-target N]
//!                    [--max-fairness R] --out TRACE.jsonl
//! arcs-serve-loadgen --connect HOST:PORT [--jobs N] [--tenants N] [--seed S] ...
//! arcs-serve-loadgen verify TRACE.jsonl
//! ```
//!
//! The default (in-process) mode drives the broker directly: it replays
//! a seeded arrival stream — same seed, same stream, byte-identical
//! trace — then analyses the trace and **fails** (exit 1) unless every
//! admitted job reached a terminal state (completed, or typed failed /
//! shed under chaos), Σ allocated caps ≤ budget at every reallocation
//! point, at least one job was rejected by admission control (the
//! stream plants inadmissible jobs on purpose), and the tenant fairness
//! ratio stays under `--max-fairness`.
//!
//! `--node-faults` injects a deterministic node-outage schedule (same
//! presets as `arcs-serve`) and turns on the chaos must-fire checks: at
//! least one node must fail and at least one victim job must be
//! requeued, or the run did not actually exercise the recovery path.
//! `--shed-target N` bounds the admission queue at N and requires load
//! shedding to fire.
//!
//! `--connect` replays the same stream against a live `arcs-serve` over
//! TCP and finishes with a draining `shutdown`; pair it with `verify`
//! on the server's trace file.

use arcs_metrics::analyze_path;
use arcs_powersim::{Fleet, Machine, NodeFaultPlan};
use arcs_serve::server::Client;
use arcs_serve::{Broker, BrokerConfig, JobSpec, Request};
use arcs_trace::{JsonlSink, TraceSink};
use std::sync::Arc;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct Args {
    jobs: usize,
    tenants: usize,
    nodes: usize,
    machine: String,
    budget_w: Option<f64>,
    seed: u64,
    quantum: usize,
    reject_every: usize,
    fault_every: usize,
    max_fairness: f64,
    out: Option<String>,
    connect: Option<String>,
    node_faults: Option<String>,
    shed_target: Option<usize>,
}

fn usage() -> ! {
    eprintln!(
        "usage: arcs-serve-loadgen [--jobs N] [--tenants N] [--nodes N] [--machine M]\n\
         \x20                        [--budget WATTS] [--seed S] [--quantum T]\n\
         \x20                        [--reject-every N] [--fault-every N]\n\
         \x20                        [--node-faults PRESET[:SEED]|JSON] [--shed-target N]\n\
         \x20                        [--max-fairness R] [--out TRACE] [--connect HOST:PORT]\n\
         \x20      arcs-serve-loadgen verify TRACE.jsonl"
    );
    std::process::exit(2)
}

/// Parse `--node-faults`: a JSON `NodeFaultPlan` if the value starts
/// with `{`, otherwise a preset name with an optional `:SEED` suffix.
fn parse_node_faults(spec: &str) -> NodeFaultPlan {
    if spec.trim_start().starts_with('{') {
        return serde_json::from_str(spec).unwrap_or_else(|err| {
            eprintln!("bad --node-faults JSON: {err}");
            std::process::exit(2)
        });
    }
    let (name, seed) = match spec.split_once(':') {
        Some((name, seed)) => (
            name,
            seed.parse().unwrap_or_else(|_| {
                eprintln!("bad --node-faults seed {seed:?}");
                std::process::exit(2)
            }),
        ),
        None => (spec, 0),
    };
    NodeFaultPlan::by_name(name, seed).unwrap_or_else(|| {
        eprintln!("unknown node-fault preset {name:?} (node-crash, node-flap, node-drain)");
        std::process::exit(2)
    })
}

fn parse_args(argv: &[String]) -> Args {
    let mut args = Args {
        jobs: 1000,
        tenants: 4,
        nodes: 8,
        machine: "crill".into(),
        budget_w: None,
        seed: 42,
        quantum: 4,
        reject_every: 97,
        fault_every: 16,
        max_fairness: 3.0,
        out: None,
        connect: None,
        node_faults: None,
        shed_target: None,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--jobs" => args.jobs = value("--jobs").parse().unwrap_or_else(|_| usage()),
            "--tenants" => args.tenants = value("--tenants").parse().unwrap_or_else(|_| usage()),
            "--nodes" => args.nodes = value("--nodes").parse().unwrap_or_else(|_| usage()),
            "--machine" => args.machine = value("--machine"),
            "--budget" => {
                args.budget_w = Some(value("--budget").parse().unwrap_or_else(|_| usage()))
            }
            "--seed" => args.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--quantum" => args.quantum = value("--quantum").parse().unwrap_or_else(|_| usage()),
            "--reject-every" => {
                args.reject_every = value("--reject-every").parse().unwrap_or_else(|_| usage())
            }
            "--fault-every" => {
                args.fault_every = value("--fault-every").parse().unwrap_or_else(|_| usage())
            }
            "--max-fairness" => {
                args.max_fairness = value("--max-fairness").parse().unwrap_or_else(|_| usage())
            }
            "--out" => args.out = Some(value("--out")),
            "--connect" => args.connect = Some(value("--connect")),
            "--node-faults" => args.node_faults = Some(value("--node-faults")),
            "--shed-target" => {
                args.shed_target = Some(value("--shed-target").parse().unwrap_or_else(|_| usage()))
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    if args.tenants == 0 || args.jobs == 0 {
        usage()
    }
    args
}

const WORKLOADS: [&str; 5] = ["sp.S", "bt.S", "cg.S", "ep.S", "mg.S"];

/// The seeded arrival stream. `budget_w` is only used to size the
/// planted-inadmissible floors; everything else is pure `seed`.
fn arrival_stream(args: &Args, budget_w: f64) -> Vec<JobSpec> {
    let mut rng = args.seed;
    (0..args.jobs)
        .map(|i| {
            let r = splitmix64(&mut rng);
            let tenant = format!("tenant{}", r % args.tenants as u64);
            let workload = WORKLOADS[(r >> 8) as usize % WORKLOADS.len()];
            let mut spec = JobSpec::new(tenant, workload).timesteps(4 + ((r >> 16) % 9) as usize);
            if args.reject_every > 0 && (i + 1) % args.reject_every == 0 {
                // Planted inadmissible job: its floor tops the whole
                // budget, so admission control MUST fire.
                spec = spec.floor_w(budget_w * 2.0);
            }
            if args.fault_every > 0 && (i + 1) % args.fault_every == 0 {
                spec = spec.fault_seed(r >> 24);
            }
            spec
        })
        .collect()
}

struct VerifyExpectations {
    max_fairness: Option<f64>,
    rejections: bool,
    /// Node faults were injected: node failures AND job requeues must
    /// both appear, or the chaos schedule never actually bit.
    requeues: bool,
    /// The admission queue was bounded: shedding must fire.
    shedding: bool,
}

impl VerifyExpectations {
    fn none() -> Self {
        VerifyExpectations {
            max_fairness: None,
            rejections: false,
            requeues: false,
            shedding: false,
        }
    }
}

fn verify_trace(path: &str, expect: &VerifyExpectations) -> i32 {
    let report = match analyze_path(path) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("loadgen: cannot analyze {path:?}: {err}");
            return 1;
        }
    };
    let b = &report.broker;
    if !b.any() {
        eprintln!("loadgen: {path:?} carries no broker events");
        return 1;
    }
    println!(
        "loadgen: {} submitted, {} scheduled, {} completed, {} rejected, \
         {} failed, {} shed ({} reallocation(s))",
        b.submitted, b.scheduled, b.completed, b.rejected, b.failed, b.shed, b.reallocations
    );
    let r = &report.recovery;
    if r.any() {
        println!(
            "loadgen: {} node failure(s) ({} permanent), {} recoveries, {} requeue(s)",
            r.node_failures, r.permanent_failures, r.node_recoveries, r.requeues
        );
    }
    let mut failed = false;
    if b.lost_jobs() != 0 {
        eprintln!(
            "loadgen: FAIL — {} job(s) lost (admitted but reached no terminal state)",
            b.lost_jobs()
        );
        failed = true;
    }
    if b.over_budget_events != 0 {
        eprintln!(
            "loadgen: FAIL — {} reallocation(s) exceeded the {:.1} W budget (peak {:.2} W)",
            b.over_budget_events, b.budget_w, b.max_total_w
        );
        failed = true;
    } else {
        println!(
            "loadgen: budget conserved — peak Σ allocations {:.2} W of {:.1} W",
            b.max_total_w, b.budget_w
        );
    }
    if expect.rejections && b.rejected == 0 {
        eprintln!("loadgen: FAIL — the planted inadmissible jobs were not rejected");
        failed = true;
    }
    if expect.requeues {
        if r.node_failures == 0 {
            eprintln!("loadgen: FAIL — node faults requested but no node ever failed");
            failed = true;
        }
        if r.requeues == 0 {
            eprintln!("loadgen: FAIL — node faults fired but no victim job was requeued");
            failed = true;
        }
    }
    if expect.shedding && b.shed == 0 {
        eprintln!("loadgen: FAIL — the admission queue was bounded but nothing was shed");
        failed = true;
    }
    match (b.fairness_ratio(), expect.max_fairness) {
        (Some(ratio), Some(limit)) => {
            println!("loadgen: tenant fairness ratio {ratio:.3} (limit {limit:.1})");
            if ratio > limit {
                eprintln!("loadgen: FAIL — fairness ratio {ratio:.3} above {limit:.1}");
                failed = true;
            }
        }
        (Some(ratio), None) => println!("loadgen: tenant fairness ratio {ratio:.3}"),
        (None, _) => println!("loadgen: fairness ratio undefined (fewer than two tenants)"),
    }
    if failed {
        1
    } else {
        println!("loadgen: PASS");
        0
    }
}

fn run_in_process(args: &Args) -> i32 {
    let machine = match args.machine.as_str() {
        "crill" => Machine::crill(),
        "minotaur" => Machine::minotaur(),
        other => {
            eprintln!("unknown machine {other:?}");
            return 2;
        }
    };
    let fleet = Fleet::homogeneous(machine, args.nodes);
    // Default: 100 W per node — between the fleet's floor (~57.5 W/node
    // on crill) and its maximum, so arbitration is always in play.
    let budget_w = args.budget_w.unwrap_or(100.0 * args.nodes as f64);
    let Some(out) = &args.out else {
        eprintln!("in-process mode requires --out TRACE.jsonl");
        return 2;
    };
    let sink = match JsonlSink::create(out) {
        Ok(sink) => Arc::new(sink),
        Err(err) => {
            eprintln!("cannot open {out:?}: {err}");
            return 1;
        }
    };

    let mut cfg = BrokerConfig::new(budget_w);
    cfg.quantum_timesteps = args.quantum.max(1);
    // A deliberately brittle ladder: no read retries and a one-fault
    // error budget, so the planted flaky-RAPL jobs actually degrade and
    // exercise the pin-to-floor reallocation path under load.
    let mut resilience = arcs::ResilienceOptions::standard();
    resilience.max_read_retries = 0;
    resilience.error_budget = Some(1);
    cfg.resilience = Some(resilience);
    cfg.node_faults = args.node_faults.as_deref().map(parse_node_faults);
    cfg.max_queue = args.shed_target;
    let chaos = cfg.node_faults.as_ref().is_some_and(|plan| plan.is_active());
    let mut broker = Broker::new(fleet, cfg, Arc::clone(&sink) as Arc<dyn TraceSink>);

    let stream = arrival_stream(args, budget_w);
    let started = std::time::Instant::now();
    let mut rng = args.seed ^ 0xA5A5_A5A5_A5A5_A5A5;
    for spec in stream {
        broker.submit(spec);
        // Interleave arrivals with simulated progress so reallocation
        // fires on live jobs, not just on an idle queue.
        for _ in 0..splitmix64(&mut rng) % 3 {
            broker.step();
        }
    }
    broker.run_until_idle();
    let virtual_s = broker.now_s();
    let counters = broker.counters();
    drop(broker);
    if let Err(err) = sink.flush() {
        eprintln!("cannot flush {out:?}: {err}");
        return 1;
    }

    let wall = started.elapsed().as_secs_f64();
    println!(
        "loadgen: {} job(s), {} tenant(s), {} node(s), budget {:.1} W, seed {}",
        args.jobs, args.tenants, args.nodes, budget_w, args.seed
    );
    println!(
        "loadgen: completed {} ({} degraded) in {:.1} virtual s, {:.2} wall s ({:.0} jobs/s)",
        counters.completed,
        counters.degraded,
        virtual_s,
        wall,
        counters.completed as f64 / wall.max(1e-9)
    );
    verify_trace(
        out,
        &VerifyExpectations {
            max_fairness: Some(args.max_fairness),
            rejections: args.reject_every > 0,
            requeues: chaos,
            shedding: args.shed_target.is_some(),
        },
    )
}

fn run_client(args: &Args, addr: &str) -> i32 {
    let mut client = match Client::connect(addr) {
        Ok(client) => client,
        Err(err) => {
            eprintln!("cannot connect to {addr}: {err}");
            return 1;
        }
    };
    // The server owns the budget; plant rejection floors high enough
    // for any sane deployment.
    let stream = arrival_stream(args, 1.0e5);
    let (mut accepted, mut rejected) = (0u64, 0u64);
    for spec in stream {
        match client.roundtrip(&Request::submit(&spec)) {
            Ok(resp) if resp.accepted == Some(true) => accepted += 1,
            Ok(resp) if resp.accepted == Some(false) => rejected += 1,
            Ok(resp) => {
                eprintln!("submit failed: {:?}", resp.error);
                return 1;
            }
            Err(err) => {
                eprintln!("connection lost: {err}");
                return 1;
            }
        }
    }
    println!("loadgen: submitted {accepted} accepted + {rejected} rejected to {addr}");
    // Draining shutdown: the ack means every admitted job completed and
    // the server's trace is ready for `verify`.
    match client.roundtrip(&Request::op_only("shutdown")) {
        Ok(resp) if resp.ok => {
            println!("loadgen: server drained and shut down");
            0
        }
        Ok(_) | Err(_) => {
            eprintln!("loadgen: shutdown did not complete cleanly");
            1
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = if argv.first().map(String::as_str) == Some("verify") {
        match argv.get(1) {
            Some(path) => verify_trace(path, &VerifyExpectations::none()),
            None => usage(),
        }
    } else {
        let args = parse_args(&argv);
        match &args.connect {
            Some(addr) => run_client(&args, &addr.clone()),
            None => run_in_process(&args),
        }
    };
    std::process::exit(code)
}
