//! `arcs-serve-top` — a live terminal dashboard over the broker's
//! telemetry plane.
//!
//! ```text
//! arcs-serve-top --connect HOST:PORT [--every N] [--snapshots N]
//!                [--once] [--format table|json] [--check-budget]
//! arcs-serve-top --replay TRACE.jsonl [--once] [--format table|json]
//!                [--check-budget]
//! ```
//!
//! Live mode sends `{"op":"watch","every":N}` and renders each pushed
//! NDJSON snapshot as a full-screen frame: per-tenant table (weight,
//! jobs, watts vs fair share, wait p50/p99), a budget utilisation bar,
//! and a rolling pane of recent events. `--once` prints a single frame
//! and exits — with `--format json` that frame is the raw snapshot
//! line, ready for `jq`.
//!
//! Replay mode reconstructs the same dashboard from a broker trace
//! (schema v5+) without a server: a pure function of the file, so
//! `--replay --once --format json` is byte-identical across runs.
//!
//! `--check-budget` turns the conservation invariant into an exit code:
//! any frame with `allocated_w > budget_w` fails the run.

use arcs_metrics::TraceReader;
use arcs_serve::{TelemetrySnapshot, TraceTelemetry};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

struct Args {
    connect: Option<String>,
    replay: Option<String>,
    every: u64,
    snapshots: Option<u64>,
    once: bool,
    format: Format,
    check_budget: bool,
}

#[derive(PartialEq, Clone, Copy)]
enum Format {
    Table,
    Json,
}

fn usage() -> ! {
    eprintln!(
        "usage: arcs-serve-top --connect HOST:PORT [--every N] [--snapshots N]\n\
         \x20                     [--once] [--format table|json] [--check-budget]\n\
         \x20      arcs-serve-top --replay TRACE.jsonl [--once] [--format table|json]\n\
         \x20                     [--check-budget]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        connect: None,
        replay: None,
        every: 1,
        snapshots: None,
        once: false,
        format: Format::Table,
        check_budget: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--connect" => args.connect = Some(value("--connect")),
            "--replay" => args.replay = Some(value("--replay")),
            "--every" => args.every = value("--every").parse().unwrap_or_else(|_| usage()),
            "--snapshots" => {
                args.snapshots = Some(value("--snapshots").parse().unwrap_or_else(|_| usage()))
            }
            "--once" => args.once = true,
            "--format" => match value("--format").as_str() {
                "table" => args.format = Format::Table,
                "json" => args.format = Format::Json,
                _ => usage(),
            },
            "--check-budget" => args.check_budget = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    if args.connect.is_some() == args.replay.is_some() {
        eprintln!("exactly one of --connect or --replay is required");
        usage()
    }
    args
}

/// The conservation invariant as an exit code (small tolerance for
/// float accumulation across reallocations). A zero budget means the
/// frame predates the first `CapReallocated` record — replay has no
/// budget reference yet, so there is nothing to check.
fn check_budget(snap: &TelemetrySnapshot) -> bool {
    snap.budget_w <= 0.0 || snap.allocated_w <= snap.budget_w + 1e-6
}

fn bar(fill: f64, width: usize) -> String {
    let filled = ((fill.clamp(0.0, 1.0)) * width as f64).round() as usize;
    let mut s = String::with_capacity(width + 2);
    s.push('[');
    for i in 0..width {
        s.push(if i < filled { '#' } else { '-' });
    }
    s.push(']');
    s
}

fn render_table(snap: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    let util = snap.utilization();
    out.push_str(&format!(
        "arcs-serve-top   t={:10.3}s   budget {:.1} W   allocated {:.1} W\n",
        snap.now_s, snap.budget_w, snap.allocated_w
    ));
    out.push_str(&format!("{} {:5.1} %\n", bar(util, 40), util * 100.0));
    out.push_str(&format!(
        "jobs: submitted {}  queued {}  running {}  completed {}  rejected {}  degraded {}\n",
        snap.submitted, snap.queued, snap.running, snap.completed, snap.rejected, snap.degraded
    ));
    out.push_str(&format!(
        "resilience: failed {}  shed {}  requeued {}  nodes down {}\n",
        snap.failed, snap.shed, snap.requeued, snap.nodes_down
    ));
    out.push_str(&format!(
        "wait p50/p99 {:.3}/{:.3} s   turnaround p50/p99 {:.3}/{:.3} s   churn mean {:.2} W\n\n",
        snap.queue_wait.p50,
        snap.queue_wait.p99,
        snap.turnaround.p50,
        snap.turnaround.p99,
        snap.realloc_churn_w.mean
    ));
    out.push_str(&format!(
        "{:<12} {:>6} {:>4} {:>5} {:>5} {:>5} {:>4} {:>4} {:>4} {:>9} {:>9} {:>9} {:>9}\n",
        "tenant",
        "weight",
        "run",
        "queue",
        "done",
        "degr",
        "rej",
        "fail",
        "shed",
        "alloc W",
        "fair W",
        "wait p50",
        "wait p99"
    ));
    for (name, t) in &snap.tenants {
        out.push_str(&format!(
            "{:<12} {:>6.2} {:>4} {:>5} {:>5} {:>5} {:>4} {:>4} {:>4} {:>9.2} {:>9.2} {:>9.3} {:>9.3}\n",
            name,
            t.weight,
            t.running,
            t.queued,
            t.completed,
            t.degraded,
            t.rejected,
            t.failed,
            t.shed,
            t.alloc_w,
            t.fair_share_w,
            t.queue_wait.p50,
            t.queue_wait.p99
        ));
    }
    out.push_str("\nrecent events\n");
    let tail = snap.events.len().saturating_sub(12);
    for line in &snap.events[tail..] {
        out.push_str("  ");
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Print one frame. Full-screen mode (live table) redraws in place.
fn render(snap: &TelemetrySnapshot, format: Format, fullscreen: bool) {
    match format {
        Format::Json => {
            println!("{}", serde_json::to_string(snap).expect("snapshots always serialize"))
        }
        Format::Table => {
            if fullscreen {
                print!("\x1b[2J\x1b[H{}", render_table(snap));
                let _ = std::io::stdout().flush();
            } else {
                print!("{}", render_table(snap));
            }
        }
    }
}

fn run_replay(args: &Args) -> i32 {
    let path = args.replay.as_ref().expect("replay mode");
    let reader = match TraceReader::open(path) {
        Ok(r) => r,
        Err(err) => {
            eprintln!("cannot open trace {path:?}: {err}");
            return 1;
        }
    };
    let mut tt = TraceTelemetry::new();
    let mut violation = false;
    for rec in reader {
        match rec {
            Ok(rec) => {
                tt.consume(&rec);
                // A placement and the reallocation it triggers are one
                // atomic step in the live broker but two trace records;
                // the invariant only holds at reallocation boundaries.
                let settled = matches!(rec.event, arcs_trace::TraceEvent::CapReallocated { .. });
                if args.check_budget && settled && !check_budget(&tt.snapshot()) {
                    violation = true;
                }
            }
            Err(err) => {
                eprintln!("bad trace record in {path:?}: {err}");
                return 1;
            }
        }
    }
    let snap = tt.snapshot();
    render(&snap, args.format, false);
    if violation {
        eprintln!("budget violated: some frame allocated more than the budget");
        return 1;
    }
    0
}

fn run_live(args: &Args) -> i32 {
    let addr = args.connect.as_ref().expect("live mode");
    let stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(err) => {
            eprintln!("cannot connect to {addr}: {err}");
            return 1;
        }
    };
    let mut writer = stream.try_clone().expect("cloning a TCP stream");
    let request = format!("{{\"op\":\"watch\",\"every\":{}}}\n", args.every.max(1));
    if writer.write_all(request.as_bytes()).is_err() || writer.flush().is_err() {
        eprintln!("cannot send watch request to {addr}");
        return 1;
    }
    let reader = BufReader::new(stream);
    let mut seen: u64 = 0;
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(err) => {
                eprintln!("watch stream error: {err}");
                return 1;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let snap: TelemetrySnapshot = match serde_json::from_str(&line) {
            Ok(s) => s,
            Err(err) => {
                eprintln!("bad snapshot line: {err}");
                return 1;
            }
        };
        if args.check_budget && !check_budget(&snap) {
            render(&snap, args.format, false);
            eprintln!(
                "budget violated at t={:.3}s: allocated {:.3} W > budget {:.3} W",
                snap.now_s, snap.allocated_w, snap.budget_w
            );
            return 1;
        }
        render(&snap, args.format, !args.once && args.format == Format::Table);
        seen += 1;
        if args.once || args.snapshots.is_some_and(|n| seen >= n) {
            return 0;
        }
    }
    // Server drained (shutdown closes the stream) — a clean end.
    0
}

fn main() {
    let args = parse_args();
    let code = if args.replay.is_some() { run_replay(&args) } else { run_live(&args) };
    std::process::exit(code)
}
