//! # arcs-harmony — an Active Harmony-style auto-tuning search engine
//!
//! Substrate standing in for the Active Harmony framework the paper embeds
//! in APEX. It provides discrete [search spaces](space::SearchSpace), the
//! sequential ask/tell [`Search`](trait@strategies::Search) protocol, three search
//! strategies — [exhaustive sweep](strategies::Exhaustive) (ARCS-Offline),
//! [Nelder–Mead](strategies::NelderMead) (ARCS-Online) and
//! [Parallel Rank Order](strategies::ParallelRankOrder) — plus client
//! [sessions](session::Session) with result caching and a persistent
//! [history](history::History) of best configurations.
//!
//! ```
//! use arcs_harmony::{Param, SearchSpace, Session, StrategyKind};
//!
//! let space = SearchSpace::new(vec![Param::new("threads", 7), Param::new("chunk", 9)]);
//! let mut session = Session::new(space, StrategyKind::nelder_mead(), vec![6, 8]);
//! while !session.converged() {
//!     let point = session.next_point();
//!     if session.awaiting_report() {
//!         // "Measure" the configuration (here: a synthetic bowl).
//!         let t = (point[0] as f64 - 3.0).powi(2) + (point[1] as f64 - 2.0).powi(2);
//!         session.report(t);
//!     }
//! }
//! let best = session.best_point();
//! assert!((best[0] as f64 - 3.0).abs() <= 1.0);
//! ```

pub mod history;
pub mod session;
pub mod space;
pub mod strategies;

pub use history::{Entry, History};
pub use session::{Session, SessionObserver, StrategyKind};
pub use space::{Param, Point, SearchSpace};
pub use strategies::{
    Candidate, Exhaustive, NelderMead, NmOptions, ParallelRankOrder, ProOptions, RandomSearch,
    Search, SearchStep,
};
