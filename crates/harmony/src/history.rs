//! Persistent best-configuration store.
//!
//! The paper: *"When the program completes, the policy saves the best
//! parameters found during the search. When the same program is run again
//! in the same configuration in the future, the saved values can be used
//! instead of repeating the search process."* This is that file. Entries
//! are keyed by region name and carry an arbitrary serialisable
//! configuration payload plus the measured objective.

use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

/// One stored tuning result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Entry<T> {
    /// The winning configuration.
    pub config: T,
    /// Objective value (execution time in seconds, for ARCS) it achieved.
    pub value: f64,
    /// How many evaluations the search spent.
    pub evaluations: usize,
}

/// Best configurations per region, serialisable to JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct History<T> {
    /// Free-form tag identifying the run context (application, workload
    /// size, power cap, architecture) — replays are only valid "in the same
    /// configuration", per the paper.
    pub context: String,
    pub entries: BTreeMap<String, Entry<T>>,
}

impl<T> History<T> {
    pub fn new(context: impl Into<String>) -> Self {
        History { context: context.into(), entries: BTreeMap::new() }
    }

    pub fn insert(&mut self, region: impl Into<String>, config: T, value: f64, evaluations: usize) {
        self.entries.insert(region.into(), Entry { config, value, evaluations });
    }

    pub fn get(&self, region: &str) -> Option<&Entry<T>> {
        self.entries.get(region)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl<T: Serialize> History<T> {
    /// Serialise to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("history serialisation cannot fail")
    }

    /// Write to `path`, creating parent directories as needed.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_json())
    }
}

impl<T: DeserializeOwned> History<T> {
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    pub fn load(path: &Path) -> io::Result<Self> {
        let text = fs::read_to_string(path)?;
        Self::from_json(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Cfg {
        threads: usize,
        schedule: String,
    }

    fn sample() -> History<Cfg> {
        let mut h = History::new("sp.B.crill.85W");
        h.insert("x_solve", Cfg { threads: 16, schedule: "guided,1".into() }, 0.41, 150);
        h.insert("compute_rhs", Cfg { threads: 16, schedule: "guided,8".into() }, 0.92, 150);
        h
    }

    #[test]
    fn json_roundtrip() {
        let h = sample();
        let back: History<Cfg> = History::from_json(&h.to_json()).unwrap();
        assert_eq!(h, back);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("arcs-harmony-test");
        let path = dir.join("nested/history.json");
        let h = sample();
        h.save(&path).unwrap();
        let back: History<Cfg> = History::load(&path).unwrap();
        assert_eq!(h, back);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lookup_by_region() {
        let h = sample();
        assert_eq!(h.get("x_solve").unwrap().config.threads, 16);
        assert!(h.get("nope").is_none());
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn corrupt_file_is_an_error() {
        let dir = std::env::temp_dir().join("arcs-harmony-corrupt");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        fs::write(&path, "{ not json").unwrap();
        assert!(History::<Cfg>::load(&path).is_err());
        fs::remove_dir_all(&dir).ok();
    }
}
