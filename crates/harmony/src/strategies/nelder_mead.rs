//! Nelder–Mead simplex search on the index-grid relaxation.
//!
//! The strategy behind **ARCS-Online**. The discrete grid is relaxed to the
//! box `[0, levels-1]^d`; the classic Nelder–Mead moves (reflection,
//! expansion, outside/inside contraction, shrink) run in the relaxed space,
//! and every proposal is rounded to the nearest grid point for measurement —
//! the approach Active Harmony takes for enumerated domains.
//!
//! Because a tuning session measures one region invocation at a time, the
//! algorithm is written as an ask/tell state machine: each `ask` emits the
//! single point the classic algorithm would evaluate next, and `tell`
//! advances the simplex.

use super::Search;
use crate::space::{Point, SearchSpace};

/// Nelder–Mead coefficients and termination settings.
#[derive(Debug, Clone, Copy)]
pub struct NmOptions {
    /// Reflection coefficient (α > 0).
    pub alpha: f64,
    /// Expansion coefficient (γ > 1).
    pub gamma: f64,
    /// Contraction coefficient (0 < ρ ≤ 0.5).
    pub rho: f64,
    /// Shrink coefficient (0 < σ < 1).
    pub sigma: f64,
    /// Stop when the simplex diameter (L∞) drops below this many grid steps.
    pub xtol: f64,
    /// Hard cap on evaluations.
    pub max_evals: usize,
    /// Stop after this many consecutive evaluations without improving the
    /// incumbent best.
    pub stall_limit: usize,
    /// When the simplex collapses (`xtol`), restart it around the incumbent
    /// best with halved steps this many times before declaring convergence.
    /// This is the standard "oriented restart" remedy for premature
    /// collapse on clamped/rounded domains.
    pub max_restarts: usize,
}

impl Default for NmOptions {
    fn default() -> Self {
        NmOptions {
            alpha: 1.0,
            gamma: 2.0,
            rho: 0.5,
            sigma: 0.5,
            xtol: 0.9,
            max_evals: 120,
            stall_limit: 25,
            max_restarts: 1,
        }
    }
}

#[derive(Debug, Clone)]
struct Vertex {
    x: Vec<f64>,
    f: f64,
}

#[derive(Debug)]
enum Role {
    /// Filling the initial simplex, vertex index.
    Init(usize),
    Reflect {
        centroid: Vec<f64>,
    },
    Expand {
        xr: Vec<f64>,
        fr: f64,
    },
    ContractOutside {
        xr: Vec<f64>,
        fr: f64,
    },
    ContractInside,
    /// Re-evaluating shrunken vertex `idx` (1..=dim).
    Shrink(usize),
}

struct Pending {
    x: Vec<f64>,
    role: Role,
}

pub struct NelderMead {
    space: SearchSpace,
    opts: NmOptions,
    simplex: Vec<Vertex>,
    proto: Vec<Vec<f64>>,
    pending: Option<Pending>,
    init_next: usize,
    evals: usize,
    stall: usize,
    restarts: usize,
    /// Per-dimension step used to build the (re)start simplex.
    step_scale: f64,
    done: bool,
    best: Option<(Point, f64)>,
}

/// Build a start simplex: `x0` plus one vertex per dimension, stepped by
/// `scale × (domain / 2)` (at least one grid cell) away from the nearer edge.
fn proto_simplex(space: &SearchSpace, x0: &[f64], scale: f64) -> Vec<Vec<f64>> {
    let upper = space.upper();
    let mut proto = vec![x0.to_vec()];
    for j in 0..space.dim() {
        let mut v = x0.to_vec();
        if upper[j] > 0.0 {
            let step = (upper[j] / 2.0 * scale).max(1.0);
            v[j] = if x0[j] + step <= upper[j] { x0[j] + step } else { x0[j] - step };
            v[j] = v[j].clamp(0.0, upper[j]);
        }
        proto.push(v);
    }
    proto
}

impl NelderMead {
    /// Start a search from `start` (typically the default configuration).
    pub fn new(space: SearchSpace, start: &[usize], opts: NmOptions) -> Self {
        assert!(space.contains(start), "start point outside the space");
        let x0: Vec<f64> = start.iter().map(|&i| i as f64).collect();
        let proto = proto_simplex(&space, &x0, 1.0);
        NelderMead {
            space,
            opts,
            simplex: Vec::new(),
            proto,
            pending: None,
            init_next: 0,
            evals: 0,
            stall: 0,
            restarts: 0,
            step_scale: 1.0,
            done: false,
            best: None,
        }
    }

    fn dim(&self) -> usize {
        self.space.dim()
    }

    fn record_best(&mut self, point: Point, value: f64) {
        if self.best.as_ref().is_none_or(|(_, b)| value < *b) {
            self.best = Some((point, value));
            self.stall = 0;
        } else {
            self.stall += 1;
        }
    }

    fn sort_simplex(&mut self) {
        self.simplex.sort_by(|a, b| a.f.partial_cmp(&b.f).unwrap_or(std::cmp::Ordering::Equal));
    }

    fn diameter(&self) -> f64 {
        let best = &self.simplex[0].x;
        self.simplex[1..]
            .iter()
            .map(|v| v.x.iter().zip(best).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max))
            .fold(0.0, f64::max)
    }

    fn check_termination(&mut self) {
        if self.evals >= self.opts.max_evals || self.stall >= self.opts.stall_limit {
            self.done = true;
            return;
        }
        if self.simplex.len() == self.dim() + 1 && self.diameter() < self.opts.xtol {
            if self.restarts < self.opts.max_restarts {
                // Oriented restart: new simplex around the incumbent best
                // with halved steps.
                self.restarts += 1;
                self.step_scale *= 0.5;
                let x0 = self
                    .best
                    .as_ref()
                    .map(|(p, _)| p.iter().map(|&i| i as f64).collect::<Vec<f64>>())
                    .unwrap_or_else(|| self.simplex[0].x.clone());
                self.proto = proto_simplex(&self.space, &x0, self.step_scale);
                self.simplex.clear();
                self.init_next = 0;
            } else {
                self.done = true;
            }
        }
    }

    /// Centroid of all vertices except the worst (assumes sorted simplex).
    fn centroid(&self) -> Vec<f64> {
        let n = self.simplex.len() - 1;
        let mut c = vec![0.0; self.dim()];
        for v in &self.simplex[..n] {
            for (ci, xi) in c.iter_mut().zip(&v.x) {
                *ci += xi;
            }
        }
        for ci in &mut c {
            *ci /= n as f64;
        }
        c
    }

    fn propose(&self, centroid: &[f64], coeff: f64) -> Vec<f64> {
        // x = centroid + coeff * (centroid - worst)
        let worst = &self.simplex.last().unwrap().x;
        let mut x: Vec<f64> =
            centroid.iter().zip(worst).map(|(c, w)| c + coeff * (c - w)).collect();
        self.space.clamp(&mut x);
        x
    }

    fn begin_iteration(&mut self) {
        self.sort_simplex();
        self.check_termination();
        if self.done || self.init_next < self.proto.len() {
            // Terminated, or an oriented restart re-entered the init phase.
            return;
        }
        let centroid = self.centroid();
        let xr = self.propose(&centroid, self.opts.alpha);
        self.pending = Some(Pending { x: xr, role: Role::Reflect { centroid } });
    }

    fn begin_shrink(&mut self) {
        // Shrink every non-best vertex toward the best, then re-evaluate
        // them one at a time (roles Shrink(1..=dim)).
        let best = self.simplex[0].x.clone();
        for v in &mut self.simplex[1..] {
            for (xi, bi) in v.x.iter_mut().zip(&best) {
                *xi = bi + self.opts.sigma * (*xi - *bi);
            }
            v.f = f64::NAN;
        }
        let x = self.simplex[1].x.clone();
        self.pending = Some(Pending { x, role: Role::Shrink(1) });
    }
}

impl Search for NelderMead {
    fn ask(&mut self) -> Option<Point> {
        loop {
            if self.done {
                return None;
            }
            if let Some(p) = &self.pending {
                return Some(self.space.round(&p.x));
            }
            if self.init_next < self.proto.len() {
                let x = self.proto[self.init_next].clone();
                self.pending = Some(Pending { x, role: Role::Init(self.init_next) });
                continue;
            }
            self.begin_iteration();
            // begin_iteration either terminated, produced a pending point,
            // or triggered an oriented restart (init phase re-entered);
            // loop to handle all three.
        }
    }

    fn tell(&mut self, value: f64) {
        let Pending { x, role } = self.pending.take().expect("tell without pending ask");
        self.evals += 1;
        self.record_best(self.space.round(&x), value);

        match role {
            Role::Init(i) => {
                debug_assert_eq!(i, self.simplex.len());
                self.simplex.push(Vertex { x, f: value });
                self.init_next += 1;
                if self.init_next >= self.proto.len() {
                    // Simplex complete; next ask starts iterating.
                    self.sort_simplex();
                }
            }
            Role::Reflect { centroid } => {
                let f_best = self.simplex[0].f;
                let n = self.simplex.len();
                let f_second_worst = self.simplex[n - 2].f;
                let f_worst = self.simplex[n - 1].f;
                if value < f_best {
                    // Try expanding further along the same direction.
                    let xe = self.propose(&centroid, self.opts.alpha * self.opts.gamma);
                    self.pending = Some(Pending { x: xe, role: Role::Expand { xr: x, fr: value } });
                } else if value < f_second_worst {
                    *self.simplex.last_mut().unwrap() = Vertex { x, f: value };
                } else if value < f_worst {
                    // Outside contraction: between centroid and reflection.
                    let xc = self.propose(&centroid, self.opts.alpha * self.opts.rho);
                    self.pending =
                        Some(Pending { x: xc, role: Role::ContractOutside { xr: x, fr: value } });
                } else {
                    // Inside contraction: between centroid and worst.
                    let xc = self.propose(&centroid, -self.opts.rho);
                    self.pending = Some(Pending { x: xc, role: Role::ContractInside });
                }
            }
            Role::Expand { xr, fr } => {
                let v = if value < fr { Vertex { x, f: value } } else { Vertex { x: xr, f: fr } };
                *self.simplex.last_mut().unwrap() = v;
            }
            Role::ContractOutside { xr, fr } => {
                if value <= fr {
                    *self.simplex.last_mut().unwrap() = Vertex { x, f: value };
                } else {
                    self.simplex.last_mut().map(|w| *w = Vertex { x: xr, f: fr }).unwrap();
                    self.begin_shrink();
                }
            }
            Role::ContractInside => {
                let f_worst = self.simplex.last().unwrap().f;
                if value < f_worst {
                    *self.simplex.last_mut().unwrap() = Vertex { x, f: value };
                } else {
                    self.begin_shrink();
                }
            }
            Role::Shrink(idx) => {
                self.simplex[idx].f = value;
                debug_assert_eq!(self.space.round(&self.simplex[idx].x), self.space.round(&x));
                if idx + 1 < self.simplex.len() {
                    let xn = self.simplex[idx + 1].x.clone();
                    self.pending = Some(Pending { x: xn, role: Role::Shrink(idx + 1) });
                }
            }
        }

        // The evaluation budget and stall limit are hard caps enforced on
        // every path, even mid-move (the simplex state is simply abandoned).
        if self.evals >= self.opts.max_evals || self.stall >= self.opts.stall_limit {
            self.done = true;
            self.pending = None;
        }
    }

    fn best(&self) -> Option<(&Point, f64)> {
        self.best.as_ref().map(|(p, v)| (p, *v))
    }

    fn converged(&self) -> bool {
        self.done
    }

    fn evaluations(&self) -> usize {
        self.evals
    }

    /// The current simplex, measured vertices only (shrink marks vertices
    /// awaiting re-evaluation with a non-finite value).
    fn candidates(&self) -> Vec<super::Candidate> {
        self.simplex
            .iter()
            .filter(|v| v.f.is_finite())
            .map(|v| super::Candidate { point: self.space.round(&v.x), value: v.f })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Param;

    fn space() -> SearchSpace {
        SearchSpace::new(vec![Param::new("a", 17), Param::new("b", 17), Param::new("c", 9)])
    }

    fn run<F: FnMut(&[usize]) -> f64>(mut nm: NelderMead, mut f: F) -> (Point, f64, usize) {
        while let Some(p) = nm.ask() {
            let v = f(&p);
            nm.tell(v);
        }
        let (p, v) = nm.best().unwrap();
        (p.clone(), v, nm.evaluations())
    }

    #[test]
    fn minimises_convex_bowl() {
        let s = space();
        let nm = NelderMead::new(s, &[16, 0, 8], NmOptions::default());
        let (best, val, evals) = run(nm, |p| {
            let a = p[0] as f64 - 5.0;
            let b = p[1] as f64 - 9.0;
            let c = p[2] as f64 - 2.0;
            a * a + b * b + c * c
        });
        // NM on a rounded grid should land at or adjacent to the optimum.
        assert!(val <= 3.0, "best={best:?} val={val} evals={evals}");
        assert!(evals <= NmOptions::default().max_evals);
    }

    #[test]
    fn far_fewer_evaluations_than_exhaustive() {
        let s = space();
        let total = s.size();
        let nm = NelderMead::new(s, &[0, 0, 0], NmOptions::default());
        let (_, _, evals) = run(nm, |p| (p[0] as f64 - 8.0).powi(2) + p[1] as f64 + p[2] as f64);
        assert!(evals < total / 4, "evals={evals} space={total}");
    }

    #[test]
    fn stays_inside_domain() {
        let s = space();
        let mut nm = NelderMead::new(s.clone(), &[16, 16, 8], NmOptions::default());
        while let Some(p) = nm.ask() {
            assert!(s.contains(&p), "proposed out-of-domain point {p:?}");
            nm.tell(p.iter().map(|&i| i as f64).sum());
        }
    }

    #[test]
    fn handles_single_level_params() {
        let s = SearchSpace::new(vec![Param::new("fixed", 1), Param::new("free", 21)]);
        let nm = NelderMead::new(s, &[0, 20], NmOptions::default());
        let (best, val, _) = run(nm, |p| (p[1] as f64 - 4.0).abs());
        assert_eq!(best[0], 0);
        // From f=16 at the start point NM must get close to the optimum;
        // exact convergence is not guaranteed on a rounded 1-D slice.
        assert!(val <= 2.0, "best={best:?} val={val}");
    }

    #[test]
    fn respects_max_evals() {
        let s = space();
        let opts = NmOptions { max_evals: 10, ..NmOptions::default() };
        let nm = NelderMead::new(s, &[0, 0, 0], opts);
        let (_, _, evals) = run(nm, |p| p[0] as f64);
        assert!(evals <= 10);
    }

    #[test]
    fn stall_limit_terminates_flat_objective() {
        let s = space();
        let opts = NmOptions { stall_limit: 8, max_evals: 1000, ..NmOptions::default() };
        let nm = NelderMead::new(s, &[8, 8, 4], opts);
        let (_, _, evals) = run(nm, |_| 42.0);
        assert!(evals < 1000, "flat objective should stall out, took {evals}");
    }

    #[test]
    fn survives_noisy_objective() {
        let s = space();
        let nm = NelderMead::new(s, &[16, 16, 0], NmOptions::default());
        let mut i = 0u64;
        let (best, _, _) = run(nm, |p| {
            i = i.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let noise = ((i >> 33) as f64 / (1u64 << 31) as f64) * 0.3;
            (p[0] as f64 - 3.0).powi(2) + (p[1] as f64 - 3.0).powi(2) + noise
        });
        // With 30% noise we still expect to land in the neighbourhood.
        assert!(best[0] <= 8 && best[1] <= 8, "best={best:?}");
    }
}
