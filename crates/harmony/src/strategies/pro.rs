//! Parallel Rank Order (PRO) search.
//!
//! Active Harmony's flagship algorithm: a simplex method designed so that
//! every round proposes a *batch* of trial points (one reflection per
//! non-best vertex through the best vertex). On a parallel tuning system
//! the batch is measured concurrently; our sessions measure one region
//! invocation at a time, so the batch is drained sequentially — the rank
//! order logic is unchanged.
//!
//! Per round:
//! 1. reflect every non-best vertex through the best vertex;
//! 2. any reflection that improves its original vertex is accepted; a
//!    reflection that beats the *simplex best* chains an expansion trial;
//! 3. if no reflection was accepted, shrink all non-best vertices toward
//!    the best and re-measure them.
//!
//! Terminates on simplex collapse (diameter below `xtol`), evaluation
//! budget, or stall.

use super::Search;
use crate::space::{Point, SearchSpace};

#[derive(Debug, Clone, Copy)]
pub struct ProOptions {
    /// Number of simplex vertices (`>= dim + 1`; 0 = auto `dim + 1`).
    pub simplex_size: usize,
    /// Expansion step multiplier applied on a best-beating reflection.
    pub expand: f64,
    /// Shrink factor toward the best vertex.
    pub shrink: f64,
    /// Stop when the simplex L∞ diameter drops below this many grid steps.
    pub xtol: f64,
    pub max_evals: usize,
    pub stall_limit: usize,
    /// On simplex collapse, rebuild around the incumbent best (with
    /// shrinking steps) this many times before declaring convergence.
    pub max_reseeds: usize,
}

impl Default for ProOptions {
    fn default() -> Self {
        ProOptions {
            simplex_size: 0,
            expand: 2.0,
            shrink: 0.5,
            xtol: 0.9,
            max_evals: 150,
            stall_limit: 30,
            max_reseeds: 2,
        }
    }
}

#[derive(Debug, Clone)]
struct Vertex {
    x: Vec<f64>,
    f: f64,
}

#[derive(Debug)]
enum Role {
    Init(usize),
    Reflect(usize),
    Expand { idx: usize },
    ShrinkEval(usize),
}

struct Pending {
    x: Vec<f64>,
    role: Role,
}

pub struct ParallelRankOrder {
    space: SearchSpace,
    opts: ProOptions,
    size: usize,
    proto_points: Vec<Vec<f64>>,
    vertices: Vec<Vertex>,
    pending: Option<Pending>,
    /// Vertices still to reflect this round (indices into `vertices`).
    queue: Vec<usize>,
    /// Did any trial this round improve its vertex?
    round_improved: bool,
    shrink_queue: Vec<usize>,
    init_next: usize,
    evals: usize,
    stall: usize,
    reseeds: usize,
    done: bool,
    best: Option<(Point, f64)>,
}

/// `x0` plus one vertex per dimension, stepped `scale × domain/2` (at least
/// one grid cell) away from the nearer edge.
fn axis_simplex(space: &SearchSpace, x0: &[f64], scale: f64) -> Vec<Vec<f64>> {
    let upper = space.upper();
    let mut out = vec![x0.to_vec()];
    for j in 0..space.dim() {
        let mut v = x0.to_vec();
        if upper[j] > 0.0 {
            let step = (upper[j] / 2.0 * scale).max(1.0);
            v[j] = if x0[j] + step <= upper[j] { x0[j] + step } else { x0[j] - step };
            v[j] = v[j].clamp(0.0, upper[j]);
        }
        out.push(v);
    }
    out
}

impl ParallelRankOrder {
    pub fn new(space: SearchSpace, start: &[usize], opts: ProOptions) -> Self {
        assert!(space.contains(start), "start point outside the space");
        let size = if opts.simplex_size == 0 {
            space.dim() + 1
        } else {
            opts.simplex_size.max(space.dim() + 1)
        };
        // Initial simplex: the start point, one axis-stepped vertex per
        // dimension (affine independence, like Nelder–Mead), and any extra
        // vertices spread across the grid at evenly spaced ranks.
        let x0: Vec<f64> = start.iter().map(|&i| i as f64).collect();
        let mut proto_points = axis_simplex(&space, &x0, 1.0);
        let total = space.size();
        let extra = size - proto_points.len().min(size);
        for k in 1..=extra {
            let rank = (k * total) / (extra + 1);
            let p = space.unrank(rank.min(total - 1));
            proto_points.push(p.iter().map(|&i| i as f64).collect());
        }
        proto_points.truncate(size);
        let size = proto_points.len();
        ParallelRankOrder {
            space,
            opts,
            size,
            proto_points,
            vertices: Vec::new(),
            pending: None,
            queue: Vec::new(),
            round_improved: false,
            shrink_queue: Vec::new(),
            init_next: 0,
            evals: 0,
            stall: 0,
            reseeds: 0,
            done: false,
            best: None,
        }
    }

    fn best_idx(&self) -> usize {
        let mut bi = 0;
        for (i, v) in self.vertices.iter().enumerate() {
            if v.f < self.vertices[bi].f {
                bi = i;
            }
        }
        bi
    }

    fn diameter(&self) -> f64 {
        let b = &self.vertices[self.best_idx()].x;
        self.vertices
            .iter()
            .map(|v| v.x.iter().zip(b).map(|(a, c)| (a - c).abs()).fold(0.0, f64::max))
            .fold(0.0, f64::max)
    }

    fn record_best(&mut self, point: Point, value: f64) {
        if self.best.as_ref().is_none_or(|(_, b)| value < *b) {
            self.best = Some((point, value));
            self.stall = 0;
        } else {
            self.stall += 1;
        }
    }

    fn reflect_through_best(&self, idx: usize, coeff: f64) -> Vec<f64> {
        let b = &self.vertices[self.best_idx()].x;
        let v = &self.vertices[idx].x;
        let mut x: Vec<f64> = b.iter().zip(v).map(|(bi, vi)| bi + coeff * (bi - vi)).collect();
        self.space.clamp(&mut x);
        x
    }

    fn start_round(&mut self) {
        if self.evals >= self.opts.max_evals || self.stall >= self.opts.stall_limit {
            self.done = true;
            return;
        }
        if self.diameter() < self.opts.xtol {
            if self.reseeds < self.opts.max_reseeds {
                self.reseeds += 1;
                self.reseed();
                return;
            }
            self.done = true;
            return;
        }
        let bi = self.best_idx();
        self.queue = (0..self.vertices.len()).filter(|&i| i != bi).collect();
        self.round_improved = false;
        self.next_trial();
    }

    fn next_trial(&mut self) {
        if let Some(idx) = self.queue.pop() {
            let x = self.reflect_through_best(idx, 1.0);
            self.pending = Some(Pending { x, role: Role::Reflect(idx) });
        } else if !self.round_improved {
            // No reflection helped: shrink everyone toward the best.
            let bi = self.best_idx();
            let best = self.vertices[bi].x.clone();
            self.shrink_queue.clear();
            for i in 0..self.vertices.len() {
                if i == bi {
                    continue;
                }
                for (xi, b) in self.vertices[i].x.iter_mut().zip(&best) {
                    *xi = b + self.opts.shrink * (*xi - *b);
                }
                self.shrink_queue.push(i);
            }
            self.next_shrink_eval();
        } else {
            self.start_round();
        }
    }

    fn next_shrink_eval(&mut self) {
        if let Some(idx) = self.shrink_queue.pop() {
            let x = self.vertices[idx].x.clone();
            self.pending = Some(Pending { x, role: Role::ShrinkEval(idx) });
        } else {
            self.start_round();
        }
    }

    fn proto(&self, i: usize) -> Vec<f64> {
        self.proto_points[i].clone()
    }

    /// Rebuild the simplex around the incumbent best with shrinking axis
    /// steps, re-measuring the fresh vertices. Escapes degenerate-subspace
    /// collapse (reflections can never leave an affine subspace the whole
    /// simplex lies in).
    fn reseed(&mut self) {
        let scale = 0.5f64.powi(self.reseeds as i32);
        let x0 = self
            .best
            .as_ref()
            .map(|(p, _)| p.iter().map(|&i| i as f64).collect::<Vec<f64>>())
            .unwrap_or_else(|| self.vertices[self.best_idx()].x.clone());
        let fresh = axis_simplex(&self.space, &x0, scale);
        self.shrink_queue.clear();
        for (i, x) in fresh.into_iter().enumerate().take(self.vertices.len()) {
            self.vertices[i] = Vertex { x, f: f64::INFINITY };
            self.shrink_queue.push(i);
        }
        self.next_shrink_eval();
    }
}

impl Search for ParallelRankOrder {
    fn ask(&mut self) -> Option<Point> {
        if self.done {
            return None;
        }
        if let Some(p) = &self.pending {
            return Some(self.space.round(&p.x));
        }
        if self.init_next < self.size {
            let x = self.proto(self.init_next);
            self.pending = Some(Pending { x, role: Role::Init(self.init_next) });
            return self.pending.as_ref().map(|p| self.space.round(&p.x));
        }
        self.start_round();
        if self.done {
            return None;
        }
        self.pending.as_ref().map(|p| self.space.round(&p.x))
    }

    fn tell(&mut self, value: f64) {
        let Pending { x, role } = self.pending.take().expect("tell without pending ask");
        self.evals += 1;
        self.record_best(self.space.round(&x), value);

        match role {
            Role::Init(i) => {
                debug_assert_eq!(i, self.vertices.len());
                self.vertices.push(Vertex { x, f: value });
                self.init_next += 1;
            }
            Role::Reflect(idx) => {
                let beat_best = value < self.vertices[self.best_idx()].f;
                if value < self.vertices[idx].f {
                    self.round_improved = true;
                    self.vertices[idx] = Vertex { x, f: value };
                    if beat_best {
                        // Chase the descent direction with an expansion.
                        let xe = self.reflect_through_best(idx, self.opts.expand);
                        self.pending = Some(Pending { x: xe, role: Role::Expand { idx } });
                        return;
                    }
                }
                self.next_trial();
            }
            Role::Expand { idx } => {
                if value < self.vertices[idx].f {
                    self.vertices[idx] = Vertex { x, f: value };
                }
                self.next_trial();
            }
            Role::ShrinkEval(idx) => {
                self.vertices[idx].f = value;
                self.next_shrink_eval();
            }
        }

        if self.evals >= self.opts.max_evals || self.stall >= self.opts.stall_limit {
            self.done = true;
        }
    }

    fn best(&self) -> Option<(&Point, f64)> {
        self.best.as_ref().map(|(p, v)| (p, *v))
    }

    fn converged(&self) -> bool {
        self.done
    }

    fn evaluations(&self) -> usize {
        self.evals
    }

    /// The current simplex population, measured vertices only (shrink
    /// marks vertices awaiting re-evaluation with a non-finite value).
    fn candidates(&self) -> Vec<super::Candidate> {
        self.vertices
            .iter()
            .filter(|v| v.f.is_finite())
            .map(|v| super::Candidate { point: self.space.round(&v.x), value: v.f })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Param;

    fn space() -> SearchSpace {
        SearchSpace::new(vec![Param::new("a", 13), Param::new("b", 13)])
    }

    fn run<F: FnMut(&[usize]) -> f64>(mut s: ParallelRankOrder, mut f: F) -> (Point, f64, usize) {
        while let Some(p) = s.ask() {
            let v = f(&p);
            s.tell(v);
        }
        let (p, v) = s.best().unwrap();
        (p.clone(), v, s.evaluations())
    }

    #[test]
    fn minimises_convex_bowl() {
        let s = ParallelRankOrder::new(space(), &[12, 12], ProOptions::default());
        let (best, val, _) = run(s, |p| (p[0] as f64 - 4.0).powi(2) + (p[1] as f64 - 7.0).powi(2));
        assert!(val <= 2.0, "best={best:?} val={val}");
    }

    #[test]
    fn cheaper_than_exhaustive() {
        let sp = space();
        let total = sp.size();
        let s = ParallelRankOrder::new(sp, &[0, 0], ProOptions::default());
        let (_, _, evals) = run(s, |p| p[0] as f64 + p[1] as f64);
        assert!(evals < total, "evals={evals} total={total}");
    }

    #[test]
    fn stays_inside_domain() {
        let sp = space();
        let mut s = ParallelRankOrder::new(sp.clone(), &[6, 6], ProOptions::default());
        while let Some(p) = s.ask() {
            assert!(sp.contains(&p));
            s.tell((p[0] * 13 + p[1]) as f64);
        }
    }

    #[test]
    fn respects_eval_budget() {
        let opts = ProOptions { max_evals: 12, ..ProOptions::default() };
        let s = ParallelRankOrder::new(space(), &[0, 0], opts);
        let (_, _, evals) = run(s, |p| p[0] as f64);
        assert!(evals <= 12);
    }
}
