//! Exhaustive grid sweep.
//!
//! The strategy behind **ARCS-Offline**: during the training execution every
//! configuration in the (manually reduced) search space is measured; the
//! best one is stored and replayed by later executions. Supports averaging
//! over repeated measurements to tolerate live-run noise.

use super::Search;
use crate::space::{Point, SearchSpace};

pub struct Exhaustive {
    space: SearchSpace,
    next_rank: usize,
    repeats: usize,
    rep_done: usize,
    acc: f64,
    pending: Option<Point>,
    best: Option<(Point, f64)>,
    evals: usize,
}

impl Exhaustive {
    /// Sweep every point once.
    pub fn new(space: SearchSpace) -> Self {
        Self::with_repeats(space, 1)
    }

    /// Sweep every point, averaging `repeats` measurements per point.
    pub fn with_repeats(space: SearchSpace, repeats: usize) -> Self {
        assert!(repeats >= 1);
        Exhaustive {
            space,
            next_rank: 0,
            repeats,
            rep_done: 0,
            acc: 0.0,
            pending: None,
            best: None,
            evals: 0,
        }
    }
}

impl Search for Exhaustive {
    fn ask(&mut self) -> Option<Point> {
        if let Some(p) = &self.pending {
            return Some(p.clone());
        }
        if self.next_rank >= self.space.size() {
            return None;
        }
        let p = self.space.unrank(self.next_rank);
        self.pending = Some(p.clone());
        Some(p)
    }

    fn tell(&mut self, value: f64) {
        let point = self.pending.take().expect("tell without pending ask");
        self.evals += 1;
        self.acc += value;
        self.rep_done += 1;
        if self.rep_done < self.repeats {
            // Ask for the same point again.
            self.pending = Some(point);
            return;
        }
        let mean = self.acc / self.repeats as f64;
        self.acc = 0.0;
        self.rep_done = 0;
        self.next_rank += 1;
        if self.best.as_ref().is_none_or(|(_, b)| mean < *b) {
            self.best = Some((point, mean));
        }
    }

    fn best(&self) -> Option<(&Point, f64)> {
        self.best.as_ref().map(|(p, v)| (p, *v))
    }

    fn converged(&self) -> bool {
        self.pending.is_none() && self.next_rank >= self.space.size()
    }

    fn evaluations(&self) -> usize {
        self.evals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Param;

    fn space() -> SearchSpace {
        SearchSpace::new(vec![Param::new("a", 4), Param::new("b", 5)])
    }

    /// Convex-ish objective with minimum at (3, 1).
    fn f(p: &[usize]) -> f64 {
        let a = p[0] as f64 - 3.0;
        let b = p[1] as f64 - 1.0;
        a * a + b * b
    }

    #[test]
    fn finds_global_minimum() {
        let mut s = Exhaustive::new(space());
        while let Some(p) = s.ask() {
            let v = f(&p);
            s.tell(v);
        }
        assert!(s.converged());
        assert_eq!(s.evaluations(), 20);
        let (best, val) = s.best().unwrap();
        assert_eq!(best, &vec![3, 1]);
        assert_eq!(val, 0.0);
    }

    #[test]
    fn repeats_average_noise() {
        let mut s = Exhaustive::with_repeats(space(), 3);
        let mut call = 0usize;
        while let Some(p) = s.ask() {
            // Deterministic "noise" that averages to zero over 3 repeats.
            let noise = [-0.4, 0.0, 0.4][call % 3];
            call += 1;
            s.tell(f(&p) + noise);
        }
        assert_eq!(s.evaluations(), 60);
        let (best, val) = s.best().unwrap();
        assert_eq!(best, &vec![3, 1]);
        assert!(val.abs() < 1e-9);
    }

    #[test]
    fn ask_is_idempotent_until_tell() {
        let mut s = Exhaustive::new(space());
        let a = s.ask().unwrap();
        let b = s.ask().unwrap();
        assert_eq!(a, b);
        s.tell(1.0);
        let c = s.ask().unwrap();
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "tell without pending ask")]
    fn tell_without_ask_panics() {
        let mut s = Exhaustive::new(space());
        s.tell(1.0);
    }
}
