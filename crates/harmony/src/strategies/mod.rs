//! Search strategy implementations.
//!
//! All strategies speak the same *ask/tell* protocol: `ask` yields the next
//! grid point to measure (or `None` once converged); `tell` reports the
//! objective value (smaller is better — ARCS minimises region execution
//! time) for the most recently asked point. The protocol is sequential
//! because a tuning session measures one region invocation at a time.

mod exhaustive;
mod nelder_mead;
mod pro;
mod random;

pub use exhaustive::Exhaustive;
pub use nelder_mead::{NelderMead, NmOptions};
pub use pro::{ParallelRankOrder, ProOptions};
pub use random::RandomSearch;

use crate::space::Point;

/// Sequential ask/tell minimiser over a discrete grid.
pub trait Search: Send {
    /// Next point to evaluate. Returns `None` once the strategy has
    /// converged. Calling `ask` again without an intervening `tell` returns
    /// the same pending point.
    fn ask(&mut self) -> Option<Point>;

    /// Report the objective value for the last point returned by `ask`.
    ///
    /// # Panics
    /// Panics if no point is pending.
    fn tell(&mut self, value: f64);

    /// Best (point, value) observed so far.
    fn best(&self) -> Option<(&Point, f64)>;

    /// Has the strategy finished searching?
    fn converged(&self) -> bool;

    /// Number of `tell`s processed.
    fn evaluations(&self) -> usize;
}
