//! Search strategy implementations.
//!
//! All strategies speak the same *ask/tell* protocol: `ask` yields the next
//! grid point to measure (or `None` once converged); `tell` reports the
//! objective value (smaller is better — ARCS minimises region execution
//! time) for the most recently asked point. The protocol is sequential
//! because a tuning session measures one region invocation at a time.

mod exhaustive;
mod nelder_mead;
mod pro;
mod random;

pub use exhaustive::Exhaustive;
pub use nelder_mead::{NelderMead, NmOptions};
pub use pro::{ParallelRankOrder, ProOptions};
pub use random::RandomSearch;

use crate::space::Point;

/// One member of a strategy's internal candidate set — a Nelder–Mead
/// simplex vertex, a PRO population member — rounded to the grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    pub point: Point,
    /// Objective value measured at `point`.
    pub value: f64,
}

/// A snapshot handed to observers after each processed measurement: what
/// was measured, the incumbent best, and the strategy's full candidate
/// state (see [`Search::candidates`]).
#[derive(Debug, Clone)]
pub struct SearchStep<'a> {
    /// The point whose measurement was just told.
    pub point: &'a Point,
    /// The value told for `point`.
    pub value: f64,
    pub best_point: &'a Point,
    pub best_value: f64,
    /// `tell`s processed so far, including cached replays.
    pub evaluations: usize,
    pub converged: bool,
    /// The strategy's candidate set after processing the measurement.
    pub candidates: &'a [Candidate],
}

/// Sequential ask/tell minimiser over a discrete grid.
pub trait Search: Send {
    /// Next point to evaluate. Returns `None` once the strategy has
    /// converged. Calling `ask` again without an intervening `tell` returns
    /// the same pending point.
    fn ask(&mut self) -> Option<Point>;

    /// Report the objective value for the last point returned by `ask`.
    ///
    /// # Panics
    /// Panics if no point is pending.
    fn tell(&mut self, value: f64);

    /// Best (point, value) observed so far.
    fn best(&self) -> Option<(&Point, f64)>;

    /// Has the strategy finished searching?
    fn converged(&self) -> bool;

    /// Number of `tell`s processed.
    fn evaluations(&self) -> usize;

    /// The strategy's current candidate set — simplex vertices for the
    /// simplex methods, measured only (unmeasured slots are omitted).
    /// Strategies without persistent candidate state return the default
    /// empty set. This is the observer hook the tracing layer reads to
    /// reconstruct *how* a search converged.
    fn candidates(&self) -> Vec<Candidate> {
        Vec::new()
    }
}
