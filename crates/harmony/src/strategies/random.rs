//! Random search: the standard auto-tuning baseline.
//!
//! Uniform deterministic sampling (without replacement, via a permuted
//! rank sequence) until the evaluation budget is spent. Any serious
//! search strategy has to beat this at equal budget — the ablation bench
//! compares Nelder–Mead and PRO against it.

use super::Search;
use crate::space::{Point, SearchSpace};

pub struct RandomSearch {
    space: SearchSpace,
    /// Multiplicative-congruential walk over ranks (full period for odd
    /// stride co-prime with the modulus neighbourhood).
    next_index: usize,
    stride: usize,
    offset: usize,
    max_evals: usize,
    pending: Option<Point>,
    best: Option<(Point, f64)>,
    evals: usize,
}

impl RandomSearch {
    pub fn new(space: SearchSpace, seed: u64, max_evals: usize) -> Self {
        let size = space.size();
        // Choose a stride co-prime with `size` so the walk visits every
        // rank exactly once before repeating.
        let mut stride = (seed as usize % size.max(1)).max(1) | 1;
        while size > 1 && gcd(stride, size) != 1 {
            stride += 2;
        }
        let offset = (seed.wrapping_mul(0x9E3779B97F4A7C15) >> 33) as usize % size.max(1);
        RandomSearch {
            space,
            next_index: 0,
            stride,
            offset,
            max_evals: max_evals.max(1),
            pending: None,
            best: None,
            evals: 0,
        }
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

impl Search for RandomSearch {
    fn ask(&mut self) -> Option<Point> {
        if self.converged() {
            return None;
        }
        if let Some(p) = &self.pending {
            return Some(p.clone());
        }
        let rank = (self.offset + self.next_index * self.stride) % self.space.size();
        let p = self.space.unrank(rank);
        self.pending = Some(p.clone());
        Some(p)
    }

    fn tell(&mut self, value: f64) {
        let p = self.pending.take().expect("tell without pending ask");
        self.evals += 1;
        self.next_index += 1;
        if self.best.as_ref().is_none_or(|(_, b)| value < *b) {
            self.best = Some((p, value));
        }
    }

    fn best(&self) -> Option<(&Point, f64)> {
        self.best.as_ref().map(|(p, v)| (p, *v))
    }

    fn converged(&self) -> bool {
        self.pending.is_none() && (self.evals >= self.max_evals || self.evals >= self.space.size())
    }

    fn evaluations(&self) -> usize {
        self.evals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Param;

    fn space() -> SearchSpace {
        SearchSpace::new(vec![Param::new("a", 6), Param::new("b", 7)])
    }

    #[test]
    fn visits_distinct_points_without_replacement() {
        let s = space();
        let mut r = RandomSearch::new(s.clone(), 42, 42);
        let mut seen = std::collections::HashSet::new();
        while let Some(p) = r.ask() {
            assert!(seen.insert(s.rank(&p)), "revisited {p:?}");
            r.tell(1.0);
        }
        assert_eq!(seen.len(), 42);
    }

    #[test]
    fn respects_budget_and_tracks_best() {
        let mut r = RandomSearch::new(space(), 7, 10);
        while let Some(p) = r.ask() {
            r.tell((p[0] * 7 + p[1]) as f64);
        }
        assert_eq!(r.evaluations(), 10);
        assert!(r.converged());
        let (_, v) = r.best().unwrap();
        assert!(v >= 0.0);
    }

    #[test]
    fn different_seeds_differ() {
        let first = |seed| {
            let mut r = RandomSearch::new(space(), seed, 5);
            let p = r.ask().unwrap();
            r.tell(0.0);
            p
        };
        // Not all seeds must differ, but these two do by construction.
        assert_ne!(first(3), first(1001));
    }

    #[test]
    fn full_budget_finds_global_minimum() {
        let s = space();
        let mut r = RandomSearch::new(s.clone(), 99, usize::MAX);
        while let Some(p) = r.ask() {
            r.tell((p[0] as f64 - 2.0).powi(2) + (p[1] as f64 - 5.0).powi(2));
        }
        assert_eq!(r.evaluations(), s.size());
        let (best, v) = r.best().unwrap();
        assert_eq!(best, &vec![2, 5]);
        assert_eq!(v, 0.0);
    }
}
