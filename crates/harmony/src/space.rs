//! Discrete search spaces.
//!
//! Active Harmony tunes over *enumerated* parameter domains: each parameter
//! has an ordered list of admissible values (e.g. thread counts
//! `{2,4,8,16,24,32}`). Search algorithms here work on the *index grid*: a
//! [`Point`] is one index per parameter. Continuous algorithms (Nelder–Mead,
//! PRO) relax indices to reals in `[0, levels-1]` and round to the nearest
//! grid point, which is exactly how Active Harmony handles enumerated
//! domains. The mapping from indices back to meaningful values (thread
//! counts, schedules, chunks) lives with the caller.

use serde::{Deserialize, Serialize};

/// One tunable parameter: a name and the number of admissible levels.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Param {
    pub name: String,
    pub levels: usize,
}

impl Param {
    pub fn new(name: impl Into<String>, levels: usize) -> Self {
        assert!(levels >= 1, "a parameter needs at least one level");
        Param { name: name.into(), levels }
    }
}

/// A point in the index grid: `point[i] < params[i].levels`.
pub type Point = Vec<usize>;

/// The Cartesian product of parameter domains.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchSpace {
    params: Vec<Param>,
}

impl SearchSpace {
    pub fn new(params: Vec<Param>) -> Self {
        assert!(!params.is_empty(), "search space needs at least one parameter");
        SearchSpace { params }
    }

    pub fn params(&self) -> &[Param] {
        &self.params
    }

    pub fn dim(&self) -> usize {
        self.params.len()
    }

    /// Total number of grid points.
    pub fn size(&self) -> usize {
        self.params.iter().map(|p| p.levels).product()
    }

    /// Is `point` inside the grid?
    pub fn contains(&self, point: &[usize]) -> bool {
        point.len() == self.dim() && point.iter().zip(&self.params).all(|(&i, p)| i < p.levels)
    }

    /// Decode a flat rank in `[0, size)` into a point (row-major order:
    /// the last parameter varies fastest).
    pub fn unrank(&self, mut rank: usize) -> Point {
        assert!(rank < self.size(), "rank out of range");
        let mut point = vec![0; self.dim()];
        for (i, p) in self.params.iter().enumerate().rev() {
            point[i] = rank % p.levels;
            rank /= p.levels;
        }
        point
    }

    /// Inverse of [`SearchSpace::unrank`].
    pub fn rank(&self, point: &[usize]) -> usize {
        debug_assert!(self.contains(point));
        let mut rank = 0;
        for (i, p) in self.params.iter().enumerate() {
            rank = rank * p.levels + point[i];
        }
        rank
    }

    /// Iterate every grid point in rank order.
    pub fn iter_points(&self) -> impl Iterator<Item = Point> + '_ {
        (0..self.size()).map(|r| self.unrank(r))
    }

    /// Round a continuous relaxation to the nearest grid point, clamping to
    /// the domain.
    pub fn round(&self, x: &[f64]) -> Point {
        debug_assert_eq!(x.len(), self.dim());
        x.iter()
            .zip(&self.params)
            .map(|(&v, p)| {
                let hi = (p.levels - 1) as f64;
                (v.clamp(0.0, hi) + 0.5).floor() as usize
            })
            .collect()
    }

    /// Clamp a continuous vector into the relaxed domain `[0, levels-1]^d`.
    pub fn clamp(&self, x: &mut [f64]) {
        for (v, p) in x.iter_mut().zip(&self.params) {
            *v = v.clamp(0.0, (p.levels - 1) as f64);
        }
    }

    /// The continuous-domain upper bound per dimension.
    pub fn upper(&self) -> Vec<f64> {
        self.params.iter().map(|p| (p.levels - 1) as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> SearchSpace {
        SearchSpace::new(vec![
            Param::new("threads", 7),
            Param::new("schedule", 4),
            Param::new("chunk", 9),
        ])
    }

    #[test]
    fn size_is_product() {
        assert_eq!(space().size(), 7 * 4 * 9);
    }

    #[test]
    fn rank_unrank_roundtrip() {
        let s = space();
        for r in 0..s.size() {
            let p = s.unrank(r);
            assert!(s.contains(&p));
            assert_eq!(s.rank(&p), r);
        }
    }

    #[test]
    fn iter_visits_all_points_once() {
        let s = space();
        let pts: Vec<Point> = s.iter_points().collect();
        assert_eq!(pts.len(), s.size());
        let mut ranks: Vec<usize> = pts.iter().map(|p| s.rank(p)).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, (0..s.size()).collect::<Vec<_>>());
    }

    #[test]
    fn round_clamps_and_rounds() {
        let s = space();
        assert_eq!(s.round(&[-3.0, 1.4, 100.0]), vec![0, 1, 8]);
        assert_eq!(s.round(&[2.5, 2.51, 2.49]), vec![3, 3, 2]);
    }

    #[test]
    fn contains_rejects_bad_points() {
        let s = space();
        assert!(!s.contains(&[7, 0, 0]));
        assert!(!s.contains(&[0, 0]));
        assert!(s.contains(&[6, 3, 8]));
    }

    #[test]
    #[should_panic]
    fn zero_level_param_rejected() {
        Param::new("bad", 0);
    }
}
