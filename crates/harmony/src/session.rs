//! Tuning sessions: the client-facing ask/tell loop.
//!
//! ARCS creates one [`Session`] per parallel region (lazily, on the first
//! `parallel_begin` for that region). The session wraps a search strategy
//! and adds the practical machinery Active Harmony clients rely on:
//!
//! * **Result caching** — continuous strategies frequently re-propose a grid
//!   point that was already measured; with caching enabled (the default for
//!   deterministic backends) the cached value is fed back to the strategy
//!   without burning a region invocation.
//! * **Post-convergence behaviour** — once converged, `next_point` returns
//!   the best configuration forever (the paper: "if tuning has converged,
//!   \[set\] the converged values").

use crate::space::{Point, SearchSpace};
use crate::strategies::{
    Exhaustive, NelderMead, NmOptions, ParallelRankOrder, ProOptions, RandomSearch, Search,
    SearchStep,
};
use arcs_metrics::Counter;
use std::collections::HashMap;

/// Callback invoked after every measurement the strategy processes —
/// real runs *and* cached replays — with a [`SearchStep`] snapshot.
pub type SessionObserver = Box<dyn FnMut(&SearchStep<'_>) + Send>;

/// Which search algorithm a session runs.
#[derive(Debug, Clone)]
pub enum StrategyKind {
    /// Full sweep (ARCS-Offline training), averaging `repeats` samples per
    /// configuration.
    Exhaustive { repeats: usize },
    /// Nelder–Mead simplex (ARCS-Online).
    NelderMead(NmOptions),
    /// Parallel Rank Order.
    ParallelRankOrder(ProOptions),
    /// Uniform random sampling (the ablation baseline): `seed`,
    /// `max_evals`.
    Random { seed: u64, max_evals: usize },
}

impl StrategyKind {
    pub fn exhaustive() -> Self {
        StrategyKind::Exhaustive { repeats: 1 }
    }

    pub fn nelder_mead() -> Self {
        StrategyKind::NelderMead(NmOptions::default())
    }

    pub fn parallel_rank_order() -> Self {
        StrategyKind::ParallelRankOrder(ProOptions::default())
    }

    pub fn random(seed: u64, max_evals: usize) -> Self {
        StrategyKind::Random { seed, max_evals }
    }
}

/// Build the boxed strategy `kind` describes, seeded at `start`.
fn build_search(space: &SearchSpace, kind: &StrategyKind, start: &Point) -> Box<dyn Search> {
    match kind {
        StrategyKind::Exhaustive { repeats } => {
            Box::new(Exhaustive::with_repeats(space.clone(), *repeats))
        }
        StrategyKind::NelderMead(opts) => Box::new(NelderMead::new(space.clone(), start, *opts)),
        StrategyKind::ParallelRankOrder(opts) => {
            Box::new(ParallelRankOrder::new(space.clone(), start, *opts))
        }
        StrategyKind::Random { seed, max_evals } => {
            Box::new(RandomSearch::new(space.clone(), *seed, *max_evals))
        }
    }
}

/// A tuning session for one tunable entity (one parallel region, in ARCS).
pub struct Session {
    space: SearchSpace,
    search: Box<dyn Search>,
    /// Kept so [`Session::restart`] can rebuild the strategy.
    strategy: StrategyKind,
    cache: Option<HashMap<usize, f64>>,
    pending: Option<Point>,
    fallback: Point,
    observer: Option<SessionObserver>,
    eval_counter: Option<Counter>,
    restarts: u32,
}

impl Session {
    /// Create a session. `start` seeds simplex strategies (ARCS uses the
    /// default configuration) and serves as the fallback point if the
    /// search converges without any measurement.
    pub fn new(space: SearchSpace, strategy: StrategyKind, start: Point) -> Self {
        assert!(space.contains(&start), "start point outside the space");
        let search = build_search(&space, &strategy, &start);
        // Exhaustive sweeps re-measure nothing, and repeated measurements
        // are how it averages noise; caching would defeat `repeats`.
        let cache = match strategy {
            StrategyKind::Exhaustive { .. } => None,
            _ => Some(HashMap::new()),
        };
        Session {
            space,
            search,
            strategy,
            cache,
            pending: None,
            fallback: start,
            observer: None,
            eval_counter: None,
            restarts: 0,
        }
    }

    /// Throw away the current search state and reseed the strategy at the
    /// best point measured so far (the original start if nothing was).
    ///
    /// This is the recovery move for a search whose candidate set was
    /// poisoned — e.g. a Nelder–Mead simplex assembled while a fault plan
    /// was spiking the timer. The unreported pending point is discarded.
    /// Accepted measurements survive in the replay cache, so the fresh
    /// strategy fast-forwards through every configuration already known
    /// without burning real region invocations.
    pub fn restart(&mut self) {
        let start = self.best_point();
        self.search = build_search(&self.space, &self.strategy, &start);
        self.pending = None;
        self.restarts += 1;
    }

    /// How many times [`Session::restart`] has fired.
    pub fn restarts(&self) -> u32 {
        self.restarts
    }

    /// Disable result caching (use when measurements are noisy and repeated
    /// evaluation is informative).
    pub fn without_cache(mut self) -> Self {
        self.cache = None;
        self
    }

    /// Bump `counter` once per `tell` the strategy processes — real runs
    /// *and* cached replays, matching [`Session::evaluations`]. Callers
    /// typically resolve one counter per strategy kind (e.g.
    /// `harmony/evaluations/nelder-mead`) from a metrics registry.
    pub fn with_eval_counter(mut self, counter: Counter) -> Self {
        self.eval_counter = Some(counter);
        self
    }

    /// Observe every measurement the strategy processes: the callback
    /// fires after each `tell` — including cached replays, which advance
    /// the search without a real region run — with the strategy's
    /// post-step state (incumbent best, candidate set).
    pub fn with_observer(mut self, observer: impl FnMut(&SearchStep<'_>) + Send + 'static) -> Self {
        self.observer = Some(Box::new(observer));
        self
    }

    /// Account and announce the measurement just processed for `point`
    /// (counter first, then observer).
    fn after_tell(&mut self, point: &Point, value: f64) {
        if let Some(c) = &self.eval_counter {
            c.inc();
        }
        self.notify(point, value);
    }

    /// Fire the observer for the measurement just processed for `point`.
    fn notify(&mut self, point: &Point, value: f64) {
        let Session { search, observer, .. } = self;
        let Some(obs) = observer.as_mut() else {
            return;
        };
        let candidates = search.candidates();
        let Some((best_point, best_value)) = search.best() else {
            return;
        };
        obs(&SearchStep {
            point,
            value,
            best_point,
            best_value,
            evaluations: search.evaluations(),
            converged: search.converged(),
            candidates: &candidates,
        });
    }

    /// The configuration to use for the next invocation. Before convergence
    /// this drives the search; after convergence it is the best point found.
    pub fn next_point(&mut self) -> Point {
        if let Some(p) = &self.pending {
            return p.clone();
        }
        loop {
            match self.search.ask() {
                None => return self.best_point(),
                Some(p) => {
                    if let Some(cache) = &self.cache {
                        if let Some(&v) = cache.get(&self.space.rank(&p)) {
                            // Known point: replay the cached measurement and
                            // let the strategy advance without a real run.
                            self.search.tell(v);
                            self.after_tell(&p, v);
                            continue;
                        }
                    }
                    self.pending = Some(p.clone());
                    return p;
                }
            }
        }
    }

    /// Report the measurement for the point most recently returned by
    /// [`Session::next_point`] while un-converged. Calls after convergence
    /// (when no point is pending) are ignored — the region keeps running
    /// with the converged configuration and ARCS keeps timing it.
    pub fn report(&mut self, value: f64) {
        let Some(p) = self.pending.take() else {
            return;
        };
        if let Some(cache) = &mut self.cache {
            cache.insert(self.space.rank(&p), value);
        }
        self.search.tell(value);
        self.after_tell(&p, value);
    }

    /// Is a measurement currently outstanding?
    pub fn awaiting_report(&self) -> bool {
        self.pending.is_some()
    }

    pub fn converged(&self) -> bool {
        self.pending.is_none() && self.search.converged()
    }

    /// Best point observed, or the start point if nothing was measured.
    pub fn best_point(&self) -> Point {
        self.search.best().map(|(p, _)| p.clone()).unwrap_or_else(|| self.fallback.clone())
    }

    /// Best (point, value) observed.
    pub fn best(&self) -> Option<(Point, f64)> {
        self.search.best().map(|(p, v)| (p.clone(), v))
    }

    /// Number of `tell`s the strategy has processed (cached replays count).
    pub fn evaluations(&self) -> usize {
        self.search.evaluations()
    }

    pub fn space(&self) -> &SearchSpace {
        &self.space
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Param;

    fn space() -> SearchSpace {
        SearchSpace::new(vec![Param::new("a", 6), Param::new("b", 6)])
    }

    fn objective(p: &[usize]) -> f64 {
        (p[0] as f64 - 2.0).powi(2) + (p[1] as f64 - 4.0).powi(2)
    }

    fn drive(mut s: Session, budget: usize) -> (Session, usize) {
        let mut real_runs = 0;
        for _ in 0..budget {
            if s.converged() {
                break;
            }
            let p = s.next_point();
            if s.awaiting_report() {
                real_runs += 1;
                s.report(objective(&p));
            }
        }
        (s, real_runs)
    }

    #[test]
    fn exhaustive_session_finds_optimum() {
        let (s, runs) = drive(Session::new(space(), StrategyKind::exhaustive(), vec![5, 0]), 1000);
        assert!(s.converged());
        assert_eq!(runs, 36);
        assert_eq!(s.best_point(), vec![2, 4]);
    }

    #[test]
    fn nm_session_converges_with_cache() {
        let (s, runs) = drive(Session::new(space(), StrategyKind::nelder_mead(), vec![5, 0]), 1000);
        assert!(s.converged());
        // Caching means real runs ≤ strategy evaluations.
        assert!(runs <= s.evaluations());
        let best = s.best_point();
        assert!(objective(&best) <= 2.0, "best={best:?}");
    }

    #[test]
    fn pro_session_converges() {
        let (s, _) =
            drive(Session::new(space(), StrategyKind::parallel_rank_order(), vec![0, 0]), 1000);
        assert!(s.converged());
        let best = s.best_point();
        assert!(objective(&best) <= 4.0, "best={best:?}");
    }

    #[test]
    fn converged_session_replays_best_forever() {
        let (mut s, _) = drive(Session::new(space(), StrategyKind::exhaustive(), vec![0, 0]), 1000);
        let best = s.best_point();
        for _ in 0..5 {
            assert_eq!(s.next_point(), best);
            assert!(!s.awaiting_report());
            s.report(123.0); // ignored
        }
        assert_eq!(s.best_point(), best);
    }

    #[test]
    fn next_point_is_stable_until_report() {
        let mut s = Session::new(space(), StrategyKind::nelder_mead(), vec![0, 0]);
        let a = s.next_point();
        let b = s.next_point();
        assert_eq!(a, b);
        s.report(1.0);
    }

    #[test]
    fn fallback_point_used_when_unmeasured() {
        let s = Session::new(space(), StrategyKind::exhaustive(), vec![3, 3]);
        assert_eq!(s.best_point(), vec![3, 3]);
    }

    #[test]
    fn restart_reseeds_at_best_and_discards_pending() {
        let mut s = Session::new(space(), StrategyKind::nelder_mead(), vec![5, 0]);
        // Feed a few honest measurements.
        for _ in 0..4 {
            let p = s.next_point();
            if s.awaiting_report() {
                s.report(objective(&p));
            }
        }
        let best_before = s.best();
        // A pending ask is outstanding; a poisoned measurement was
        // rejected upstream, so restart instead of reporting.
        let _ = s.next_point();
        s.restart();
        assert_eq!(s.restarts(), 1);
        assert!(!s.awaiting_report(), "restart discards the pending point");
        // The restarted search still converges to a good point, replaying
        // the cached measurements on the way.
        let (s, _) = drive(s, 1000);
        assert!(s.converged());
        let best = s.best().unwrap();
        assert!(best.1 <= best_before.map(|(_, v)| v).unwrap_or(f64::INFINITY));
        assert!(objective(&best.0) <= 2.0, "best={best:?}");
    }

    #[test]
    fn restart_before_any_measurement_reseeds_at_start() {
        let mut s = Session::new(space(), StrategyKind::nelder_mead(), vec![3, 3]);
        s.restart();
        assert_eq!(s.best_point(), vec![3, 3]);
        let (s, _) = drive(s, 1000);
        assert!(s.converged());
    }

    #[test]
    fn observer_sees_every_tell_including_cached_replays() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        let steps = Arc::new(AtomicUsize::new(0));
        let last_best = Arc::new(parking_lot::Mutex::new(None::<(Point, f64)>));
        let session = {
            let steps = Arc::clone(&steps);
            let last_best = Arc::clone(&last_best);
            Session::new(space(), StrategyKind::nelder_mead(), vec![5, 0]).with_observer(
                move |step| {
                    steps.fetch_add(1, Ordering::Relaxed);
                    assert!(step.value.is_finite());
                    assert!(step.best_value <= step.value, "best can never exceed a told value");
                    *last_best.lock() = Some((step.best_point.clone(), step.best_value));
                },
            )
        };
        let (s, real_runs) = drive(session, 1000);
        assert!(s.converged());
        // One observer step per strategy evaluation: cached replays count.
        assert_eq!(steps.load(Ordering::Relaxed), s.evaluations());
        assert!(real_runs <= s.evaluations());
        let (best_point, best_value) = last_best.lock().clone().unwrap();
        assert_eq!(s.best().unwrap(), (best_point, best_value));
    }

    #[test]
    fn eval_counter_counts_every_tell() {
        let registry = arcs_metrics::MetricsRegistry::new();
        let session = Session::new(space(), StrategyKind::nelder_mead(), vec![5, 0])
            .with_eval_counter(registry.counter("harmony/evaluations/nelder-mead"));
        let (s, real_runs) = drive(session, 1000);
        assert!(s.converged());
        let counted = registry.snapshot().counter("harmony/evaluations/nelder-mead");
        assert_eq!(counted, s.evaluations() as u64);
        // Cached replays are tells without runs, so the counter can exceed
        // the number of real region invocations but never undercounts them.
        assert!(counted >= real_runs as u64);
    }

    #[test]
    fn observer_receives_simplex_candidates_from_nelder_mead() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        let max_candidates = Arc::new(AtomicUsize::new(0));
        let session = {
            let max_candidates = Arc::clone(&max_candidates);
            Session::new(space(), StrategyKind::nelder_mead(), vec![5, 0]).with_observer(
                move |step| {
                    max_candidates.fetch_max(step.candidates.len(), Ordering::Relaxed);
                    for c in step.candidates {
                        assert!(c.value.is_finite());
                        assert_eq!(c.point.len(), 2);
                    }
                },
            )
        };
        let (_, _) = drive(session, 1000);
        // Dim+1 = 3 vertices once the initial simplex is measured.
        assert_eq!(max_candidates.load(Ordering::Relaxed), 3);
    }
}
