//! Tuning sessions: the client-facing ask/tell loop.
//!
//! ARCS creates one [`Session`] per parallel region (lazily, on the first
//! `parallel_begin` for that region). The session wraps a search strategy
//! and adds the practical machinery Active Harmony clients rely on:
//!
//! * **Result caching** — continuous strategies frequently re-propose a grid
//!   point that was already measured; with caching enabled (the default for
//!   deterministic backends) the cached value is fed back to the strategy
//!   without burning a region invocation.
//! * **Post-convergence behaviour** — once converged, `next_point` returns
//!   the best configuration forever (the paper: "if tuning has converged,
//!   \[set\] the converged values").

use crate::space::{Point, SearchSpace};
use crate::strategies::{
    Exhaustive, NelderMead, NmOptions, ParallelRankOrder, ProOptions, RandomSearch, Search,
};
use std::collections::HashMap;

/// Which search algorithm a session runs.
#[derive(Debug, Clone)]
pub enum StrategyKind {
    /// Full sweep (ARCS-Offline training), averaging `repeats` samples per
    /// configuration.
    Exhaustive { repeats: usize },
    /// Nelder–Mead simplex (ARCS-Online).
    NelderMead(NmOptions),
    /// Parallel Rank Order.
    ParallelRankOrder(ProOptions),
    /// Uniform random sampling (the ablation baseline): `seed`,
    /// `max_evals`.
    Random { seed: u64, max_evals: usize },
}

impl StrategyKind {
    pub fn exhaustive() -> Self {
        StrategyKind::Exhaustive { repeats: 1 }
    }

    pub fn nelder_mead() -> Self {
        StrategyKind::NelderMead(NmOptions::default())
    }

    pub fn parallel_rank_order() -> Self {
        StrategyKind::ParallelRankOrder(ProOptions::default())
    }

    pub fn random(seed: u64, max_evals: usize) -> Self {
        StrategyKind::Random { seed, max_evals }
    }
}

/// A tuning session for one tunable entity (one parallel region, in ARCS).
pub struct Session {
    space: SearchSpace,
    search: Box<dyn Search>,
    cache: Option<HashMap<usize, f64>>,
    pending: Option<Point>,
    fallback: Point,
}

impl Session {
    /// Create a session. `start` seeds simplex strategies (ARCS uses the
    /// default configuration) and serves as the fallback point if the
    /// search converges without any measurement.
    pub fn new(space: SearchSpace, strategy: StrategyKind, start: Point) -> Self {
        assert!(space.contains(&start), "start point outside the space");
        let search: Box<dyn Search> = match &strategy {
            StrategyKind::Exhaustive { repeats } => {
                Box::new(Exhaustive::with_repeats(space.clone(), *repeats))
            }
            StrategyKind::NelderMead(opts) => {
                Box::new(NelderMead::new(space.clone(), &start, *opts))
            }
            StrategyKind::ParallelRankOrder(opts) => {
                Box::new(ParallelRankOrder::new(space.clone(), &start, *opts))
            }
            StrategyKind::Random { seed, max_evals } => {
                Box::new(RandomSearch::new(space.clone(), *seed, *max_evals))
            }
        };
        // Exhaustive sweeps re-measure nothing, and repeated measurements
        // are how it averages noise; caching would defeat `repeats`.
        let cache = match strategy {
            StrategyKind::Exhaustive { .. } => None,
            _ => Some(HashMap::new()),
        };
        Session { space, search, cache, pending: None, fallback: start }
    }

    /// Disable result caching (use when measurements are noisy and repeated
    /// evaluation is informative).
    pub fn without_cache(mut self) -> Self {
        self.cache = None;
        self
    }

    /// The configuration to use for the next invocation. Before convergence
    /// this drives the search; after convergence it is the best point found.
    pub fn next_point(&mut self) -> Point {
        if let Some(p) = &self.pending {
            return p.clone();
        }
        loop {
            match self.search.ask() {
                None => return self.best_point(),
                Some(p) => {
                    if let Some(cache) = &self.cache {
                        if let Some(&v) = cache.get(&self.space.rank(&p)) {
                            // Known point: replay the cached measurement and
                            // let the strategy advance without a real run.
                            self.search.tell(v);
                            continue;
                        }
                    }
                    self.pending = Some(p.clone());
                    return p;
                }
            }
        }
    }

    /// Report the measurement for the point most recently returned by
    /// [`Session::next_point`] while un-converged. Calls after convergence
    /// (when no point is pending) are ignored — the region keeps running
    /// with the converged configuration and ARCS keeps timing it.
    pub fn report(&mut self, value: f64) {
        let Some(p) = self.pending.take() else {
            return;
        };
        if let Some(cache) = &mut self.cache {
            cache.insert(self.space.rank(&p), value);
        }
        self.search.tell(value);
    }

    /// Is a measurement currently outstanding?
    pub fn awaiting_report(&self) -> bool {
        self.pending.is_some()
    }

    pub fn converged(&self) -> bool {
        self.pending.is_none() && self.search.converged()
    }

    /// Best point observed, or the start point if nothing was measured.
    pub fn best_point(&self) -> Point {
        self.search.best().map(|(p, _)| p.clone()).unwrap_or_else(|| self.fallback.clone())
    }

    /// Best (point, value) observed.
    pub fn best(&self) -> Option<(Point, f64)> {
        self.search.best().map(|(p, v)| (p.clone(), v))
    }

    /// Number of `tell`s the strategy has processed (cached replays count).
    pub fn evaluations(&self) -> usize {
        self.search.evaluations()
    }

    pub fn space(&self) -> &SearchSpace {
        &self.space
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Param;

    fn space() -> SearchSpace {
        SearchSpace::new(vec![Param::new("a", 6), Param::new("b", 6)])
    }

    fn objective(p: &[usize]) -> f64 {
        (p[0] as f64 - 2.0).powi(2) + (p[1] as f64 - 4.0).powi(2)
    }

    fn drive(mut s: Session, budget: usize) -> (Session, usize) {
        let mut real_runs = 0;
        for _ in 0..budget {
            if s.converged() {
                break;
            }
            let p = s.next_point();
            if s.awaiting_report() {
                real_runs += 1;
                s.report(objective(&p));
            }
        }
        (s, real_runs)
    }

    #[test]
    fn exhaustive_session_finds_optimum() {
        let (s, runs) = drive(Session::new(space(), StrategyKind::exhaustive(), vec![5, 0]), 1000);
        assert!(s.converged());
        assert_eq!(runs, 36);
        assert_eq!(s.best_point(), vec![2, 4]);
    }

    #[test]
    fn nm_session_converges_with_cache() {
        let (s, runs) = drive(Session::new(space(), StrategyKind::nelder_mead(), vec![5, 0]), 1000);
        assert!(s.converged());
        // Caching means real runs ≤ strategy evaluations.
        assert!(runs <= s.evaluations());
        let best = s.best_point();
        assert!(objective(&best) <= 2.0, "best={best:?}");
    }

    #[test]
    fn pro_session_converges() {
        let (s, _) =
            drive(Session::new(space(), StrategyKind::parallel_rank_order(), vec![0, 0]), 1000);
        assert!(s.converged());
        let best = s.best_point();
        assert!(objective(&best) <= 4.0, "best={best:?}");
    }

    #[test]
    fn converged_session_replays_best_forever() {
        let (mut s, _) = drive(Session::new(space(), StrategyKind::exhaustive(), vec![0, 0]), 1000);
        let best = s.best_point();
        for _ in 0..5 {
            assert_eq!(s.next_point(), best);
            assert!(!s.awaiting_report());
            s.report(123.0); // ignored
        }
        assert_eq!(s.best_point(), best);
    }

    #[test]
    fn next_point_is_stable_until_report() {
        let mut s = Session::new(space(), StrategyKind::nelder_mead(), vec![0, 0]);
        let a = s.next_point();
        let b = s.next_point();
        assert_eq!(a, b);
        s.report(1.0);
    }

    #[test]
    fn fallback_point_used_when_unmeasured() {
        let s = Session::new(space(), StrategyKind::exhaustive(), vec![3, 3]);
        assert_eq!(s.best_point(), vec![3, 3]);
    }
}
