//! Property tests for the search engine: domain safety, convergence,
//! optimality of the exhaustive sweep, and serialisation.

use arcs_harmony::{
    History, NelderMead, NmOptions, ParallelRankOrder, Param, ProOptions, Search, SearchSpace,
    Session, StrategyKind,
};
use proptest::prelude::*;

fn arb_space() -> impl Strategy<Value = SearchSpace> {
    proptest::collection::vec(1usize..8, 1..4).prop_map(|levels| {
        SearchSpace::new(
            levels.into_iter().enumerate().map(|(i, l)| Param::new(format!("p{i}"), l)).collect(),
        )
    })
}

/// A deterministic pseudo-random objective derived from the point.
fn objective(seed: u64, p: &[usize]) -> f64 {
    let mut h = seed ^ 0x9E3779B97F4A7C15;
    for &x in p {
        h = (h ^ x as u64).wrapping_mul(0x100000001B3);
    }
    (h >> 11) as f64 / (1u64 << 53) as f64
}

proptest! {
    /// rank/unrank are inverse bijections over the whole grid.
    #[test]
    fn rank_unrank_bijection(space in arb_space()) {
        for r in 0..space.size() {
            let p = space.unrank(r);
            prop_assert!(space.contains(&p));
            prop_assert_eq!(space.rank(&p), r);
        }
    }

    /// Exhaustive search always finds the global minimum of any objective.
    #[test]
    fn exhaustive_finds_global_minimum(space in arb_space(), seed in any::<u64>()) {
        let mut s = arcs_harmony::Exhaustive::new(space.clone());
        while let Some(p) = s.ask() {
            let v = objective(seed, &p);
            s.tell(v);
        }
        let (best, val) = s.best().unwrap();
        let true_min = space
            .iter_points()
            .map(|p| objective(seed, &p))
            .fold(f64::INFINITY, f64::min);
        prop_assert_eq!(val, true_min);
        prop_assert_eq!(objective(seed, best), true_min);
    }

    /// Nelder–Mead stays inside the domain, terminates within its budget,
    /// and returns a point at least as good as its start.
    #[test]
    fn nelder_mead_is_safe_and_bounded(space in arb_space(), seed in any::<u64>()) {
        let start = space.unrank(space.size() / 2);
        let start_val = objective(seed, &start);
        let opts = NmOptions { max_evals: 80, ..NmOptions::default() };
        let mut nm = NelderMead::new(space.clone(), &start, opts);
        let mut evals = 0;
        while let Some(p) = nm.ask() {
            prop_assert!(space.contains(&p), "out-of-domain proposal {:?}", p);
            nm.tell(objective(seed, &p));
            evals += 1;
            prop_assert!(evals <= 200, "runaway ask/tell loop");
        }
        prop_assert!(nm.converged());
        prop_assert!(evals <= 80);
        let (_, best_val) = nm.best().unwrap();
        prop_assert!(best_val <= start_val + 1e-12);
    }

    /// Same guarantees for Parallel Rank Order.
    #[test]
    fn pro_is_safe_and_bounded(space in arb_space(), seed in any::<u64>()) {
        let start = space.unrank(0);
        let opts = ProOptions { max_evals: 80, ..ProOptions::default() };
        let mut pro = ParallelRankOrder::new(space.clone(), &start, opts);
        let mut evals = 0;
        while let Some(p) = pro.ask() {
            prop_assert!(space.contains(&p));
            pro.tell(objective(seed, &p));
            evals += 1;
            prop_assert!(evals <= 200);
        }
        prop_assert!(pro.converged());
        prop_assert!(evals <= 80);
    }

    /// Sessions never hand out more *real* measurements than the space has
    /// points (caching folds repeats), and converge for every strategy.
    #[test]
    fn sessions_converge_with_bounded_real_runs(
        space in arb_space(),
        seed in any::<u64>(),
        strategy_pick in 0usize..3,
    ) {
        let strategy = match strategy_pick {
            0 => StrategyKind::exhaustive(),
            1 => StrategyKind::nelder_mead(),
            _ => StrategyKind::parallel_rank_order(),
        };
        let start = space.unrank(space.size() - 1);
        let mut session = Session::new(space.clone(), strategy, start);
        let mut real_runs = 0;
        for _ in 0..10_000 {
            if session.converged() {
                break;
            }
            let p = session.next_point();
            if session.awaiting_report() {
                real_runs += 1;
                session.report(objective(seed, &p));
            }
        }
        prop_assert!(session.converged(), "session failed to converge");
        if strategy_pick != 0 {
            // Caching bounds simplex strategies by the grid size.
            prop_assert!(real_runs <= space.size().max(4) * 2,
                "real runs {} vs grid {}", real_runs, space.size());
        } else {
            prop_assert_eq!(real_runs, space.size());
        }
        prop_assert!(space.contains(&session.best_point()));
    }

    /// History serialisation round-trips arbitrary entries.
    #[test]
    fn history_roundtrip(
        entries in proptest::collection::btree_map(
            "[a-z_]{1,12}",
            (0usize..64, 0.0f64..1e6, 0usize..1000),
            0..8,
        ),
        context in "[a-zA-Z0-9._-]{0,24}",
    ) {
        let mut h: History<usize> = History::new(context);
        for (name, (cfg, value, evals)) in &entries {
            h.insert(name.clone(), *cfg, *value, *evals);
        }
        let back: History<usize> = History::from_json(&h.to_json()).unwrap();
        prop_assert_eq!(back.len(), h.len());
        for (name, (cfg, _, evals)) in &entries {
            let e = back.get(name).unwrap();
            prop_assert_eq!(&e.config, cfg);
            prop_assert_eq!(&e.evaluations, evals);
        }
    }
}
