//! ARCS observability substrate: a metrics aggregation registry and a
//! trace analysis engine.
//!
//! The **registry** half ([`registry`]) gives every layer of the stack —
//! the `omprt` thread pool, the `powersim` memo cache, the run driver,
//! the `harmony` search — cheap named [`Counter`]s, [`Gauge`]s and
//! log-bucketed [`Histogram`]s behind the same zero-cost-when-disabled
//! discipline as the trace layer: a component holds an `Option` of
//! resolved handles, so without an attached [`MetricsRegistry`] the hot
//! path pays one branch and allocates nothing.
//!
//! The **analysis** half ([`analysis`]) replays the JSONL traces the
//! `arcs-trace` sinks write: [`TraceReader`] streams validated records
//! (schema-version and sequence checks) into [`TraceAnalysis`], which
//! reconstructs per-region profiles, per-cap energy/EDP summaries,
//! search-convergence curves, cache hit-rate timelines and the §III-C
//! overhead ledger — including the cross-check that the driver's clock
//! is fully explained by region time plus charged overhead.
//! [`compare_reports`] turns two such [`TraceReport`]s into a
//! perf-regression gate (`arcs-sim compare --fail-on <pct>`).

pub mod analysis;
pub mod registry;

pub use analysis::{
    analyze, analyze_path, compare_reports, compare_reports_for, BrokerReport, CacheReport,
    CapSegment, Comparison, ConvergencePoint, FaultReport, OverheadReport, RecoveryReport,
    RegionBreakdown, SelfProfile, TenantBreakdown, TraceAnalysis, TraceReadError, TraceReader,
    TraceReport,
};
pub use registry::{
    BucketCount, Counter, CounterFamily, Gauge, GaugeFamily, Histogram, HistogramFamily,
    HistogramSummary, LabelId, MetricValue, MetricsRegistry, Snapshot, Timer,
};

#[cfg(test)]
mod proptests {
    use crate::Histogram;
    use proptest::prelude::*;

    proptest! {
        /// Merging the histograms of two halves of a stream equals
        /// histogramming the whole stream: bucket counts (and so every
        /// quantile) are exact — both sides walk identical buckets. The
        /// float accumulators (`total`, `sum_sq`) may differ by rounding,
        /// since merge adds the halves in a different order than the
        /// interleaved stream.
        #[test]
        fn merge_of_halves_equals_whole_stream(
            samples in proptest::collection::vec(1e-6f64..1e6, 1..200),
            split in 0usize..200,
        ) {
            let split = split % (samples.len() + 1);
            let whole = Histogram::new();
            let (a, b) = (Histogram::new(), Histogram::new());
            for (i, &v) in samples.iter().enumerate() {
                whole.record(v);
                if i < split { &a } else { &b }.record(v);
            }
            a.merge(&b);
            let (merged, direct) = (a.state(), whole.state());
            prop_assert_eq!(merged.buckets(), direct.buckets());
            prop_assert_eq!(merged.zeros(), direct.zeros());
            let (ours, theirs) = (a.summary(), whole.summary());
            prop_assert_eq!(ours.count, theirs.count);
            prop_assert_eq!(ours.min, theirs.min);
            prop_assert_eq!(ours.max, theirs.max);
            prop_assert!((ours.total - theirs.total).abs() <= 1e-12 * theirs.total.abs());
            prop_assert_eq!(ours.p50, theirs.p50);
            prop_assert_eq!(ours.p90, theirs.p90);
            prop_assert_eq!(ours.p99, theirs.p99);
        }

        /// Exposition buckets are cumulative: counts never decrease as
        /// `le` rises, the bounds strictly ascend, and the final bucket
        /// accounts for every sample except the +Inf remainder (`count`).
        #[test]
        fn prometheus_buckets_are_cumulative_and_monotone(
            samples in proptest::collection::vec(-1e3f64..1e6, 0..300),
        ) {
            let h = Histogram::new();
            for &v in &samples {
                h.record(v);
            }
            let s = h.summary();
            for pair in s.buckets.windows(2) {
                prop_assert!(pair[0].le < pair[1].le, "le must ascend");
                prop_assert!(pair[0].count <= pair[1].count, "counts must be cumulative");
            }
            if let Some(last) = s.buckets.last() {
                prop_assert!(last.count <= s.count);
                prop_assert_eq!(last.count, s.count, "finite samples all fall under the last bound");
            } else {
                prop_assert_eq!(s.count, 0);
            }
        }
    }
}
