//! The aggregation registry: named counters, gauges and log-bucketed
//! histograms behind cheap cloneable handles.
//!
//! The usage discipline mirrors the trace layer's zero-cost contract:
//! components *resolve* their handles once, at attach time (holding them
//! in an `Option` or `OnceLock`), so the un-instrumented hot path pays one
//! branch and the instrumented one a relaxed atomic (counter/gauge) or a
//! short uncontended lock (histogram). The registry's name map is
//! lock-sharded and touched only at resolution and snapshot time, never
//! per sample.

use arcs_apex::Profile;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotone event count. Clones share state; `inc`/`add` are single
/// relaxed atomics, safe on any hot path.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn new() -> Self {
        Counter::default()
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// The shared cell behind this handle, for bridging into layers that
    /// cannot depend on `arcs-metrics` (e.g. `JsonlSink`'s write-error
    /// count lives in `arcs-trace`, below this crate in the dependency
    /// order, but should still surface through a registry counter).
    pub fn shared(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.0)
    }
}

/// A last-value-wins float (stored as bits in an atomic). `add` is a CAS
/// loop, for accumulating quantities like seconds of charged overhead.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub fn new() -> Self {
        Gauge::default()
    }

    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    pub fn add(&self, delta: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self.0.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Log-bucket resolution: 8 buckets per factor of two, so each bucket
/// spans a ratio of 2^(1/8) ≈ 1.09 — quantiles are accurate to ~9 %.
const BUCKETS_PER_OCTAVE: f64 = 8.0;

/// Mergeable histogram state: exact per-bucket counts plus an
/// [`arcs_apex::Profile`] as the scalar summary (count/total/min/max,
/// exact — only the quantiles are bucket-resolution estimates). Not
/// serialized — snapshots carry the [`HistogramSummary`] instead.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramState {
    /// Bucket index → sample count. Index `i` covers values in
    /// `[2^(i/8), 2^((i+1)/8))`; negative indices cover values below 1.
    buckets: BTreeMap<i32, u64>,
    /// Samples ≤ 0 (durations and counts should never be negative, but a
    /// histogram must not lose them silently).
    zeros: u64,
    summary: Profile,
}

impl HistogramState {
    fn bucket_index(value: f64) -> i32 {
        (value.log2() * BUCKETS_PER_OCTAVE).floor() as i32
    }

    /// Geometric midpoint of bucket `i` — the value a quantile estimate
    /// reports for samples landing in that bucket.
    fn bucket_mid(i: i32) -> f64 {
        ((i as f64 + 0.5) / BUCKETS_PER_OCTAVE).exp2()
    }

    fn record(&mut self, value: f64) {
        self.summary.record(value);
        if value > 0.0 && value.is_finite() {
            *self.buckets.entry(Self::bucket_index(value)).or_insert(0) += 1;
        } else {
            self.zeros += 1;
        }
    }

    fn merge(&mut self, other: &HistogramState) {
        for (&i, &n) in &other.buckets {
            *self.buckets.entry(i).or_insert(0) += n;
        }
        self.zeros += other.zeros;
        self.summary.merge(&other.summary);
    }

    /// Quantile estimate (`q` in `[0, 1]`): the midpoint of the bucket
    /// holding the sample of that rank. 0 when empty.
    fn quantile(&self, q: f64) -> f64 {
        let n = self.summary.count;
        if n == 0 {
            return 0.0;
        }
        // Rank of the selected sample, 0-based, nearest-rank style.
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).clamp(1, n) - 1;
        if rank < self.zeros {
            return 0.0;
        }
        let mut seen = self.zeros;
        for (&i, &count) in &self.buckets {
            seen += count;
            if rank < seen {
                return Self::bucket_mid(i);
            }
        }
        self.summary.max
    }

    /// Bucket index → sample count. Index `i` covers values in
    /// `[2^(i/8), 2^((i+1)/8))` — see `bucket_index`.
    pub fn buckets(&self) -> &BTreeMap<i32, u64> {
        &self.buckets
    }

    /// Samples that fell outside the positive-finite bucket range.
    pub fn zeros(&self) -> u64 {
        self.zeros
    }

    /// The exact scalar summary.
    pub fn summary(&self) -> &Profile {
        &self.summary
    }

    /// Cumulative buckets at octave granularity: one `(le, count)` pair
    /// per power-of-two upper bound that has samples at or below it, with
    /// `count` counting every sample ≤ `le` (zeros included, Prometheus
    /// style). The final implicit `+Inf` bucket is the total count.
    fn cumulative_octaves(&self) -> Vec<BucketCount> {
        let mut out = Vec::new();
        let mut running = self.zeros;
        let mut octave = i32::MIN;
        for (&i, &n) in &self.buckets {
            let k = i.div_euclid(BUCKETS_PER_OCTAVE as i32);
            if k != octave {
                if octave != i32::MIN {
                    out.push(BucketCount { le: ((octave + 1) as f64).exp2(), count: running });
                }
                octave = k;
            }
            running += n;
        }
        if octave != i32::MIN {
            out.push(BucketCount { le: ((octave + 1) as f64).exp2(), count: running });
        } else if self.zeros > 0 {
            // Only non-positive samples: a single le=1 bucket holds them.
            out.push(BucketCount { le: 1.0, count: running });
        }
        out
    }

    fn summarize(&self) -> HistogramSummary {
        let p = &self.summary;
        HistogramSummary {
            count: p.count,
            total: p.total,
            min: if p.count == 0 { 0.0 } else { p.min },
            max: if p.count == 0 { 0.0 } else { p.max },
            mean: p.mean(),
            stddev: p.stddev(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            buckets: self.cumulative_octaves(),
        }
    }
}

/// A shared log-bucketed histogram handle. Recording takes one short
/// uncontended mutex; reads clone the state out.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<Mutex<HistogramState>>);

impl Histogram {
    pub fn new() -> Self {
        Histogram::default()
    }

    pub fn record(&self, value: f64) {
        self.0.lock().record(value);
    }

    /// Fold `other`'s samples into this histogram, as if its stream had
    /// been recorded here: counts are exact; quantiles of the merged
    /// histogram match recording the concatenated stream to within one
    /// bucket (they operate on identical bucket counts).
    pub fn merge(&self, other: &Histogram) {
        // Clone the other side first so the two locks are never held
        // together (merging a histogram into itself must not deadlock).
        let theirs = other.state();
        self.0.lock().merge(&theirs);
    }

    pub fn state(&self) -> HistogramState {
        self.0.lock().clone()
    }

    pub fn count(&self) -> u64 {
        self.0.lock().summary.count
    }

    pub fn summary(&self) -> HistogramSummary {
        self.0.lock().summarize()
    }

    /// Start a wall-clock span that records its elapsed seconds into this
    /// histogram when dropped (or explicitly via [`Timer::stop`]).
    pub fn start_timer(&self) -> Timer {
        Timer { hist: self.clone(), start: Instant::now(), armed: true }
    }
}

/// A guard that times a span and records it into a [`Histogram`] in
/// seconds. Dropping the guard records; [`Timer::stop`] records and
/// returns the measured duration; [`Timer::discard`] abandons the span.
#[derive(Debug)]
pub struct Timer {
    hist: Histogram,
    start: Instant,
    armed: bool,
}

impl Timer {
    /// Record the elapsed seconds now and return them.
    pub fn stop(mut self) -> f64 {
        let elapsed = self.start.elapsed().as_secs_f64();
        self.armed = false;
        self.hist.record(elapsed);
        elapsed
    }

    /// Drop the span without recording anything.
    pub fn discard(mut self) {
        self.armed = false;
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        if self.armed {
            self.hist.record(self.start.elapsed().as_secs_f64());
        }
    }
}

/// Scalar summary of a histogram at snapshot time. `count`…`stddev` are
/// exact (from the embedded [`Profile`]); the quantiles are log-bucket
/// estimates good to one bucket (~9 %). `buckets` carries cumulative
/// counts at power-of-two upper bounds for exposition renderers.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    pub count: u64,
    pub total: f64,
    pub min: f64,
    pub max: f64,
    pub mean: f64,
    pub stddev: f64,
    pub p50: f64,
    pub p90: f64,
    pub p99: f64,
    /// Cumulative `(le, count)` pairs, ascending in `le`; absent in
    /// snapshots written before this field existed.
    #[serde(default)]
    pub buckets: Vec<BucketCount>,
}

/// One cumulative histogram bucket: `count` samples had values ≤ `le`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BucketCount {
    pub le: f64,
    pub count: u64,
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

const REGISTRY_SHARDS: usize = 8;

/// A lock-sharded name → metric map. Handles resolved from it share state
/// with the registry, so a snapshot sees every sample recorded through
/// any clone.
///
/// Resolution is get-or-create: the first caller decides the metric's
/// type and later callers of the same name must agree (a name cannot be
/// both a counter and a histogram — that panics, loudly, because it is a
/// programming error, not a runtime condition).
pub struct MetricsRegistry {
    shards: Vec<Mutex<HashMap<String, Metric>>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry {
            shards: (0..REGISTRY_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, name: &str) -> &Mutex<HashMap<String, Metric>> {
        // FNV-1a; only shard selection, not key identity.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        &self.shards[(h % REGISTRY_SHARDS as u64) as usize]
    }

    /// Resolve (or create) the counter called `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut shard = self.shard(name).lock();
        match shard.entry(name.to_string()).or_insert_with(|| Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric `{name}` is a {}, not a counter", kind_of(other)),
        }
    }

    /// Resolve (or create) the gauge called `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut shard = self.shard(name).lock();
        match shard.entry(name.to_string()).or_insert_with(|| Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric `{name}` is a {}, not a gauge", kind_of(other)),
        }
    }

    /// Resolve (or create) the histogram called `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut shard = self.shard(name).lock();
        match shard.entry(name.to_string()).or_insert_with(|| Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric `{name}` is a {}, not a histogram", kind_of(other)),
        }
    }

    /// Resolve a per-label counter family (see [`CounterFamily`]).
    pub fn counter_family(self: &Arc<Self>, name: &str, label_key: &str) -> CounterFamily {
        CounterFamily { inner: Family::new(self, name, label_key) }
    }

    /// Resolve a per-label gauge family (see [`GaugeFamily`]).
    pub fn gauge_family(self: &Arc<Self>, name: &str, label_key: &str) -> GaugeFamily {
        GaugeFamily { inner: Family::new(self, name, label_key) }
    }

    /// Resolve a per-label histogram family (see [`HistogramFamily`]).
    pub fn histogram_family(self: &Arc<Self>, name: &str, label_key: &str) -> HistogramFamily {
        HistogramFamily { inner: Family::new(self, name, label_key) }
    }

    /// A point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let mut metrics: Vec<MetricSample> = Vec::new();
        for shard in &self.shards {
            for (name, metric) in shard.lock().iter() {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.summary()),
                };
                metrics.push(MetricSample { name: name.clone(), value });
            }
        }
        metrics.sort_by(|a, b| a.name.cmp(&b.name));
        Snapshot { metrics }
    }
}

fn kind_of(m: &Metric) -> &'static str {
    match m {
        Metric::Counter(_) => "counter",
        Metric::Gauge(_) => "gauge",
        Metric::Histogram(_) => "histogram",
    }
}

/// A dense id for one label value inside a family — the labeled analogue
/// of the sweep engine's interned `RegionId`s. Intern once (cold), then
/// emit through the resolved handle with zero allocation per sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LabelId(u32);

impl LabelId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Shared machinery behind the typed families: a label-value interner
/// plus the dense vector of resolved handles. The registry name for a
/// member is `name{key="value"}`, so family members land in snapshots
/// (and the Prometheus renderer) like any other metric.
struct Family<H> {
    registry: Arc<MetricsRegistry>,
    name: String,
    label_key: String,
    state: Mutex<FamilyState<H>>,
}

#[derive(Default)]
struct FamilyState<H> {
    ids: HashMap<String, u32>,
    handles: Vec<H>,
}

impl<H: Clone> Family<H> {
    fn new(registry: &Arc<MetricsRegistry>, name: &str, label_key: &str) -> Self {
        Family {
            registry: Arc::clone(registry),
            name: name.to_string(),
            label_key: label_key.to_string(),
            state: Mutex::new(FamilyState { ids: HashMap::new(), handles: Vec::new() }),
        }
    }

    fn member_name(&self, label: &str) -> String {
        let escaped = label.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n");
        format!("{}{{{}=\"{}\"}}", self.name, self.label_key, escaped)
    }

    fn intern(&self, label: &str, resolve: impl Fn(&MetricsRegistry, &str) -> H) -> LabelId {
        let mut state = self.state.lock();
        if let Some(&id) = state.ids.get(label) {
            return LabelId(id);
        }
        let handle = resolve(&self.registry, &self.member_name(label));
        let id = state.handles.len() as u32;
        state.handles.push(handle);
        state.ids.insert(label.to_string(), id);
        LabelId(id)
    }

    fn get(&self, id: LabelId) -> H {
        self.state.lock().handles[id.index()].clone()
    }
}

macro_rules! family_type {
    ($family:ident, $handle:ident, $resolve:ident, $doc:literal) => {
        #[doc = $doc]
        /// Label values are interned to dense [`LabelId`]s; `intern` +
        /// `get` resolve a shared handle that callers hold across
        /// samples, so the emission path allocates nothing.
        pub struct $family {
            inner: Family<$handle>,
        }

        impl $family {
            /// Intern `label`, creating the member metric on first sight.
            pub fn intern(&self, label: &str) -> LabelId {
                self.inner.intern(label, |reg, name| reg.$resolve(name))
            }

            /// The resolved handle for an interned label.
            pub fn get(&self, id: LabelId) -> $handle {
                self.inner.get(id)
            }

            /// Intern-and-resolve in one call (cold paths, tests).
            pub fn with_label(&self, label: &str) -> $handle {
                let id = self.intern(label);
                self.get(id)
            }
        }
    };
}

family_type!(CounterFamily, Counter, counter, "A `name{key=\"value\"}` counter family.");
family_type!(GaugeFamily, Gauge, gauge, "A `name{key=\"value\"}` gauge family.");
family_type!(HistogramFamily, Histogram, histogram, "A `name{key=\"value\"}` histogram family.");

/// One named metric inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricSample {
    pub name: String,
    pub value: MetricValue,
}

/// The value half of a [`MetricSample`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetricValue {
    Counter(u64),
    Gauge(f64),
    Histogram(HistogramSummary),
}

/// A serializable, renderable point-in-time view of a registry.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Sorted by name.
    pub metrics: Vec<MetricSample>,
}

impl Snapshot {
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.iter().find(|m| m.name == name).map(|m| &m.value)
    }

    /// Counter value by name (0 when absent or not a counter) — the
    /// common read in assertions and reports.
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Counter(n)) => *n,
            _ => 0,
        }
    }

    /// Histogram summary by name (`None` when absent or not a histogram).
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        match self.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes")
    }

    /// Render in the Prometheus text exposition format.
    ///
    /// Registry names are slash-separated (`arcs/serve/queue_wait_s`) and
    /// family members carry a `{key="value"}` suffix; the renderer
    /// sanitizes the base name to `[a-zA-Z0-9_:]`, emits one `# TYPE`
    /// line per base name, and expands histograms into cumulative
    /// `_bucket{le="..."}` series plus `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut typed: HashSet<String> = HashSet::new();
        for m in &self.metrics {
            let (raw_base, labels) = match m.name.find('{') {
                Some(at) => (&m.name[..at], &m.name[at..]),
                None => (m.name.as_str(), ""),
            };
            let base = sanitize_metric_name(raw_base);
            let kind = match &m.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "histogram",
            };
            if typed.insert(base.clone()) {
                out.push_str(&format!("# TYPE {base} {kind}\n"));
            }
            match &m.value {
                MetricValue::Counter(n) => out.push_str(&format!("{base}{labels} {n}\n")),
                MetricValue::Gauge(v) => out.push_str(&format!("{base}{labels} {v}\n")),
                MetricValue::Histogram(h) => {
                    for b in &h.buckets {
                        out.push_str(&format!(
                            "{base}_bucket{} {}\n",
                            merge_le_label(labels, &format!("{}", b.le)),
                            b.count
                        ));
                    }
                    out.push_str(&format!(
                        "{base}_bucket{} {}\n",
                        merge_le_label(labels, "+Inf"),
                        h.count
                    ));
                    out.push_str(&format!("{base}_sum{labels} {}\n", h.total));
                    out.push_str(&format!("{base}_count{labels} {}\n", h.count));
                }
            }
        }
        out
    }

    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Render as an aligned text table: name, type, and either the value
    /// or the histogram's count/mean/p50/p90/p99.
    pub fn to_table(&self) -> String {
        let name_w =
            self.metrics.iter().map(|m| m.name.len()).max().unwrap_or(6).max("metric".len());
        let mut out = String::new();
        out.push_str(&format!("{:<name_w$}  {:<9}  value\n", "metric", "type"));
        for m in &self.metrics {
            match &m.value {
                MetricValue::Counter(n) => {
                    out.push_str(&format!("{:<name_w$}  {:<9}  {n}\n", m.name, "counter"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("{:<name_w$}  {:<9}  {v:.6}\n", m.name, "gauge"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{:<name_w$}  {:<9}  n={} mean={:.6} p50={:.6} p90={:.6} p99={:.6}\n",
                        m.name, "histogram", h.count, h.mean, h.p50, h.p90, h.p99
                    ));
                }
            }
        }
        out
    }
}

/// Prometheus metric names are `[a-zA-Z_:][a-zA-Z0-9_:]*`; everything
/// else (the registry's `/` separators, dashes, dots) becomes `_`.
fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok || (i == 0 && c.is_ascii_digit()) { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Splice an `le="..."` pair into an existing (possibly empty) label set.
fn merge_le_label(labels: &str, le: &str) -> String {
    match labels.strip_suffix('}') {
        Some(head) if !head.is_empty() && head != "{" => format!("{head},le=\"{le}\"}}"),
        _ => format!("{{le=\"{le}\"}}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_share_state_across_clones() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x/events");
        let b = reg.counter("x/events");
        a.inc();
        b.add(4);
        assert_eq!(reg.counter("x/events").get(), 5);

        let g = reg.gauge("x/level");
        g.set(2.5);
        reg.gauge("x/level").add(0.75);
        assert_eq!(g.get(), 3.25);
    }

    #[test]
    fn concurrent_counting_is_lossless() {
        let reg = Arc::new(MetricsRegistry::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let reg = Arc::clone(&reg);
                s.spawn(move || {
                    let c = reg.counter("hot");
                    let g = reg.gauge("sum");
                    for _ in 0..1000 {
                        c.inc();
                        g.add(0.5);
                    }
                });
            }
        });
        assert_eq!(reg.counter("hot").get(), 4000);
        assert_eq!(reg.gauge("sum").get(), 2000.0);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn type_mismatch_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("x");
        let _ = reg.gauge("x");
    }

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 1000.0);
        // One log-bucket is a 2^(1/8) ≈ 1.09 ratio; allow one bucket each way.
        let tol = 2f64.powf(1.0 / 8.0);
        assert!(s.p50 >= 500.0 / tol && s.p50 <= 500.0 * tol, "p50={}", s.p50);
        assert!(s.p90 >= 900.0 / tol && s.p90 <= 900.0 * tol, "p90={}", s.p90);
        assert!(s.p99 >= 990.0 / tol && s.p99 <= 990.0 * tol, "p99={}", s.p99);
    }

    #[test]
    fn histogram_handles_zero_and_tiny_values() {
        let h = Histogram::new();
        h.record(0.0);
        h.record(-1.0);
        h.record(1e-9);
        let s = h.summary();
        assert_eq!(s.count, 3);
        assert_eq!(h.state().zeros, 2);
        assert_eq!(s.p50, 0.0, "median of {{-1, 0, 1e-9}} sits in the zero bucket");
    }

    #[test]
    fn empty_histogram_summary_is_zeroed() {
        let s = Histogram::new().summary();
        assert_eq!(s, HistogramSummary::default());
    }

    #[test]
    fn merge_is_exact_on_counts_and_summary() {
        let whole = Histogram::new();
        let (a, b) = (Histogram::new(), Histogram::new());
        for i in 0..100 {
            let v = 0.5 + i as f64;
            whole.record(v);
            if i % 2 == 0 { &a } else { &b }.record(v);
        }
        a.merge(&b);
        assert_eq!(a.state(), whole.state());
    }

    #[test]
    fn self_merge_doubles_without_deadlock() {
        let h = Histogram::new();
        h.record(3.0);
        let clone = h.clone(); // same underlying state
        h.merge(&clone);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn histogram_single_sample_quantiles_sit_in_its_bucket() {
        let h = Histogram::new();
        h.record(10.0);
        let s = h.summary();
        assert_eq!((s.count, s.min, s.max), (1, 10.0, 10.0));
        let tol = 2f64.powf(1.0 / 8.0);
        for (q, name) in [(s.p50, "p50"), (s.p90, "p90"), (s.p99, "p99")] {
            assert!(q >= 10.0 / tol && q <= 10.0 * tol, "{name}={q}");
        }
    }

    #[test]
    fn histogram_all_equal_samples_collapse_to_one_bucket() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(7.5);
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, s.p99, "every quantile reads the same bucket midpoint");
        let tol = 2f64.powf(1.0 / 8.0);
        assert!(s.p50 >= 7.5 / tol && s.p50 <= 7.5 * tol, "p50={}", s.p50);
        assert_eq!(h.state().buckets().len(), 1);
    }

    #[test]
    fn histogram_merge_of_disjoint_octaves_keeps_both_tails() {
        let (a, b, whole) = (Histogram::new(), Histogram::new(), Histogram::new());
        for _ in 0..1000 {
            a.record(0.25);
            whole.record(0.25);
        }
        for _ in 0..10 {
            b.record(1024.0);
            whole.record(1024.0);
        }
        a.merge(&b);
        assert_eq!(a.state(), whole.state());
        let s = a.summary();
        assert_eq!((s.count, s.min, s.max), (1010, 0.25, 1024.0));
        let tol = 2f64.powf(1.0 / 8.0);
        assert!(s.p50 <= 0.25 * tol, "p50={} stays in the low octave", s.p50);
        // The top 10 of 1010 samples start above rank 1000, so p99 still
        // reads the low octave while max records the far tail exactly.
        assert!(s.p99 <= 0.25 * tol, "p99={}", s.p99);
    }

    #[test]
    fn timer_records_elapsed_seconds() {
        let h = Histogram::new();
        let t = h.start_timer();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let elapsed = t.stop();
        assert!(elapsed >= 0.002);
        {
            let _implicit = h.start_timer();
        }
        h.start_timer().discard();
        let s = h.summary();
        assert_eq!(s.count, 2, "stop + drop record, discard does not");
        assert_eq!(s.max, elapsed.max(s.max));
    }

    #[test]
    fn families_intern_labels_and_share_state() {
        let reg = Arc::new(MetricsRegistry::new());
        let jobs = reg.counter_family("serve/jobs", "tenant");
        let acme = jobs.intern("acme");
        assert_eq!(jobs.intern("acme"), acme, "re-interning is stable");
        jobs.get(acme).add(3);
        jobs.with_label("acme").inc();
        jobs.with_label("umbrella").inc();

        let waits = reg.histogram_family("serve/wait_s", "tenant");
        waits.with_label("acme").record(0.5);

        let snap = reg.snapshot();
        assert_eq!(snap.counter("serve/jobs{tenant=\"acme\"}"), 4);
        assert_eq!(snap.counter("serve/jobs{tenant=\"umbrella\"}"), 1);
        assert_eq!(snap.histogram("serve/wait_s{tenant=\"acme\"}").unwrap().count, 1);
    }

    #[test]
    fn prometheus_exposition_matches_the_golden_file() {
        let reg = Arc::new(MetricsRegistry::new());
        reg.gauge("arcs/demo/energy_j").set(2.5);
        reg.counter("arcs/demo/evals").add(5);
        reg.counter_family("arcs/demo/jobs", "tenant").with_label("acme").add(3);
        let lat = reg.histogram("arcs/demo/lat_s");
        lat.record(1.0);
        lat.record(3.0);
        let text = reg.snapshot().to_prometheus();
        assert_eq!(text, include_str!("../testdata/prometheus_golden.txt"));
    }

    #[test]
    fn prometheus_renders_zero_only_and_labeled_histograms() {
        let reg = Arc::new(MetricsRegistry::new());
        reg.histogram("only/zeros").record(0.0);
        reg.histogram_family("fam/lat_s", "tenant").with_label("a\"b").record(2.0);
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("only_zeros_bucket{le=\"1\"} 1\n"), "{text}");
        assert!(text.contains("fam_lat_s_bucket{tenant=\"a\\\"b\",le=\"4\"} 1\n"), "{text}");
        assert!(text.contains("fam_lat_s_count{tenant=\"a\\\"b\"} 1\n"), "{text}");
    }

    #[test]
    fn snapshot_sorts_serializes_and_renders() {
        let reg = MetricsRegistry::new();
        reg.counter("b/count").add(2);
        reg.gauge("a/level").set(1.5);
        reg.histogram("c/lat").record(0.25);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.metrics.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["a/level", "b/count", "c/lat"]);
        assert_eq!(snap.counter("b/count"), 2);
        assert_eq!(snap.counter("a/level"), 0, "gauges don't read as counters");

        let back = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);

        let table = snap.to_table();
        assert!(table.contains("a/level"));
        assert!(table.contains("histogram"));
        let header_cols = table.lines().next().unwrap().find("value").unwrap();
        assert!(header_cols > "a/level".len(), "name column is padded");
    }
}
