//! The aggregation registry: named counters, gauges and log-bucketed
//! histograms behind cheap cloneable handles.
//!
//! The usage discipline mirrors the trace layer's zero-cost contract:
//! components *resolve* their handles once, at attach time (holding them
//! in an `Option` or `OnceLock`), so the un-instrumented hot path pays one
//! branch and the instrumented one a relaxed atomic (counter/gauge) or a
//! short uncontended lock (histogram). The registry's name map is
//! lock-sharded and touched only at resolution and snapshot time, never
//! per sample.

use arcs_apex::Profile;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotone event count. Clones share state; `inc`/`add` are single
/// relaxed atomics, safe on any hot path.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn new() -> Self {
        Counter::default()
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins float (stored as bits in an atomic). `add` is a CAS
/// loop, for accumulating quantities like seconds of charged overhead.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub fn new() -> Self {
        Gauge::default()
    }

    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    pub fn add(&self, delta: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self.0.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Log-bucket resolution: 8 buckets per factor of two, so each bucket
/// spans a ratio of 2^(1/8) ≈ 1.09 — quantiles are accurate to ~9 %.
const BUCKETS_PER_OCTAVE: f64 = 8.0;

/// Mergeable histogram state: exact per-bucket counts plus an
/// [`arcs_apex::Profile`] as the scalar summary (count/total/min/max,
/// exact — only the quantiles are bucket-resolution estimates). Not
/// serialized — snapshots carry the [`HistogramSummary`] instead.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramState {
    /// Bucket index → sample count. Index `i` covers values in
    /// `[2^(i/8), 2^((i+1)/8))`; negative indices cover values below 1.
    buckets: BTreeMap<i32, u64>,
    /// Samples ≤ 0 (durations and counts should never be negative, but a
    /// histogram must not lose them silently).
    zeros: u64,
    summary: Profile,
}

impl HistogramState {
    fn bucket_index(value: f64) -> i32 {
        (value.log2() * BUCKETS_PER_OCTAVE).floor() as i32
    }

    /// Geometric midpoint of bucket `i` — the value a quantile estimate
    /// reports for samples landing in that bucket.
    fn bucket_mid(i: i32) -> f64 {
        ((i as f64 + 0.5) / BUCKETS_PER_OCTAVE).exp2()
    }

    fn record(&mut self, value: f64) {
        self.summary.record(value);
        if value > 0.0 && value.is_finite() {
            *self.buckets.entry(Self::bucket_index(value)).or_insert(0) += 1;
        } else {
            self.zeros += 1;
        }
    }

    fn merge(&mut self, other: &HistogramState) {
        for (&i, &n) in &other.buckets {
            *self.buckets.entry(i).or_insert(0) += n;
        }
        self.zeros += other.zeros;
        self.summary.merge(&other.summary);
    }

    /// Quantile estimate (`q` in `[0, 1]`): the midpoint of the bucket
    /// holding the sample of that rank. 0 when empty.
    fn quantile(&self, q: f64) -> f64 {
        let n = self.summary.count;
        if n == 0 {
            return 0.0;
        }
        // Rank of the selected sample, 0-based, nearest-rank style.
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).clamp(1, n) - 1;
        if rank < self.zeros {
            return 0.0;
        }
        let mut seen = self.zeros;
        for (&i, &count) in &self.buckets {
            seen += count;
            if rank < seen {
                return Self::bucket_mid(i);
            }
        }
        self.summary.max
    }

    /// Bucket index → sample count. Index `i` covers values in
    /// `[2^(i/8), 2^((i+1)/8))` — see `bucket_index`.
    pub fn buckets(&self) -> &BTreeMap<i32, u64> {
        &self.buckets
    }

    /// Samples that fell outside the positive-finite bucket range.
    pub fn zeros(&self) -> u64 {
        self.zeros
    }

    /// The exact scalar summary.
    pub fn summary(&self) -> &Profile {
        &self.summary
    }

    fn summarize(&self) -> HistogramSummary {
        let p = &self.summary;
        HistogramSummary {
            count: p.count,
            total: p.total,
            min: if p.count == 0 { 0.0 } else { p.min },
            max: if p.count == 0 { 0.0 } else { p.max },
            mean: p.mean(),
            stddev: p.stddev(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// A shared log-bucketed histogram handle. Recording takes one short
/// uncontended mutex; reads clone the state out.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<Mutex<HistogramState>>);

impl Histogram {
    pub fn new() -> Self {
        Histogram::default()
    }

    pub fn record(&self, value: f64) {
        self.0.lock().record(value);
    }

    /// Fold `other`'s samples into this histogram, as if its stream had
    /// been recorded here: counts are exact; quantiles of the merged
    /// histogram match recording the concatenated stream to within one
    /// bucket (they operate on identical bucket counts).
    pub fn merge(&self, other: &Histogram) {
        // Clone the other side first so the two locks are never held
        // together (merging a histogram into itself must not deadlock).
        let theirs = other.state();
        self.0.lock().merge(&theirs);
    }

    pub fn state(&self) -> HistogramState {
        self.0.lock().clone()
    }

    pub fn count(&self) -> u64 {
        self.0.lock().summary.count
    }

    pub fn summary(&self) -> HistogramSummary {
        self.0.lock().summarize()
    }
}

/// Scalar summary of a histogram at snapshot time. `count`…`stddev` are
/// exact (from the embedded [`Profile`]); the quantiles are log-bucket
/// estimates good to one bucket (~9 %).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    pub count: u64,
    pub total: f64,
    pub min: f64,
    pub max: f64,
    pub mean: f64,
    pub stddev: f64,
    pub p50: f64,
    pub p90: f64,
    pub p99: f64,
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

const REGISTRY_SHARDS: usize = 8;

/// A lock-sharded name → metric map. Handles resolved from it share state
/// with the registry, so a snapshot sees every sample recorded through
/// any clone.
///
/// Resolution is get-or-create: the first caller decides the metric's
/// type and later callers of the same name must agree (a name cannot be
/// both a counter and a histogram — that panics, loudly, because it is a
/// programming error, not a runtime condition).
pub struct MetricsRegistry {
    shards: Vec<Mutex<HashMap<String, Metric>>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry {
            shards: (0..REGISTRY_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, name: &str) -> &Mutex<HashMap<String, Metric>> {
        // FNV-1a; only shard selection, not key identity.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        &self.shards[(h % REGISTRY_SHARDS as u64) as usize]
    }

    /// Resolve (or create) the counter called `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut shard = self.shard(name).lock();
        match shard.entry(name.to_string()).or_insert_with(|| Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric `{name}` is a {}, not a counter", kind_of(other)),
        }
    }

    /// Resolve (or create) the gauge called `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut shard = self.shard(name).lock();
        match shard.entry(name.to_string()).or_insert_with(|| Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric `{name}` is a {}, not a gauge", kind_of(other)),
        }
    }

    /// Resolve (or create) the histogram called `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut shard = self.shard(name).lock();
        match shard.entry(name.to_string()).or_insert_with(|| Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric `{name}` is a {}, not a histogram", kind_of(other)),
        }
    }

    /// A point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let mut metrics: Vec<MetricSample> = Vec::new();
        for shard in &self.shards {
            for (name, metric) in shard.lock().iter() {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.summary()),
                };
                metrics.push(MetricSample { name: name.clone(), value });
            }
        }
        metrics.sort_by(|a, b| a.name.cmp(&b.name));
        Snapshot { metrics }
    }
}

fn kind_of(m: &Metric) -> &'static str {
    match m {
        Metric::Counter(_) => "counter",
        Metric::Gauge(_) => "gauge",
        Metric::Histogram(_) => "histogram",
    }
}

/// One named metric inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricSample {
    pub name: String,
    pub value: MetricValue,
}

/// The value half of a [`MetricSample`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetricValue {
    Counter(u64),
    Gauge(f64),
    Histogram(HistogramSummary),
}

/// A serializable, renderable point-in-time view of a registry.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Sorted by name.
    pub metrics: Vec<MetricSample>,
}

impl Snapshot {
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.iter().find(|m| m.name == name).map(|m| &m.value)
    }

    /// Counter value by name (0 when absent or not a counter) — the
    /// common read in assertions and reports.
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Counter(n)) => *n,
            _ => 0,
        }
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes")
    }

    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Render as an aligned text table: name, type, and either the value
    /// or the histogram's count/mean/p50/p90/p99.
    pub fn to_table(&self) -> String {
        let name_w =
            self.metrics.iter().map(|m| m.name.len()).max().unwrap_or(6).max("metric".len());
        let mut out = String::new();
        out.push_str(&format!("{:<name_w$}  {:<9}  value\n", "metric", "type"));
        for m in &self.metrics {
            match &m.value {
                MetricValue::Counter(n) => {
                    out.push_str(&format!("{:<name_w$}  {:<9}  {n}\n", m.name, "counter"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("{:<name_w$}  {:<9}  {v:.6}\n", m.name, "gauge"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{:<name_w$}  {:<9}  n={} mean={:.6} p50={:.6} p90={:.6} p99={:.6}\n",
                        m.name, "histogram", h.count, h.mean, h.p50, h.p90, h.p99
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_share_state_across_clones() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x/events");
        let b = reg.counter("x/events");
        a.inc();
        b.add(4);
        assert_eq!(reg.counter("x/events").get(), 5);

        let g = reg.gauge("x/level");
        g.set(2.5);
        reg.gauge("x/level").add(0.75);
        assert_eq!(g.get(), 3.25);
    }

    #[test]
    fn concurrent_counting_is_lossless() {
        let reg = Arc::new(MetricsRegistry::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let reg = Arc::clone(&reg);
                s.spawn(move || {
                    let c = reg.counter("hot");
                    let g = reg.gauge("sum");
                    for _ in 0..1000 {
                        c.inc();
                        g.add(0.5);
                    }
                });
            }
        });
        assert_eq!(reg.counter("hot").get(), 4000);
        assert_eq!(reg.gauge("sum").get(), 2000.0);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn type_mismatch_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("x");
        let _ = reg.gauge("x");
    }

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 1000.0);
        // One log-bucket is a 2^(1/8) ≈ 1.09 ratio; allow one bucket each way.
        let tol = 2f64.powf(1.0 / 8.0);
        assert!(s.p50 >= 500.0 / tol && s.p50 <= 500.0 * tol, "p50={}", s.p50);
        assert!(s.p90 >= 900.0 / tol && s.p90 <= 900.0 * tol, "p90={}", s.p90);
        assert!(s.p99 >= 990.0 / tol && s.p99 <= 990.0 * tol, "p99={}", s.p99);
    }

    #[test]
    fn histogram_handles_zero_and_tiny_values() {
        let h = Histogram::new();
        h.record(0.0);
        h.record(-1.0);
        h.record(1e-9);
        let s = h.summary();
        assert_eq!(s.count, 3);
        assert_eq!(h.state().zeros, 2);
        assert_eq!(s.p50, 0.0, "median of {{-1, 0, 1e-9}} sits in the zero bucket");
    }

    #[test]
    fn empty_histogram_summary_is_zeroed() {
        let s = Histogram::new().summary();
        assert_eq!(s, HistogramSummary::default());
    }

    #[test]
    fn merge_is_exact_on_counts_and_summary() {
        let whole = Histogram::new();
        let (a, b) = (Histogram::new(), Histogram::new());
        for i in 0..100 {
            let v = 0.5 + i as f64;
            whole.record(v);
            if i % 2 == 0 { &a } else { &b }.record(v);
        }
        a.merge(&b);
        assert_eq!(a.state(), whole.state());
    }

    #[test]
    fn self_merge_doubles_without_deadlock() {
        let h = Histogram::new();
        h.record(3.0);
        let clone = h.clone(); // same underlying state
        h.merge(&clone);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn snapshot_sorts_serializes_and_renders() {
        let reg = MetricsRegistry::new();
        reg.counter("b/count").add(2);
        reg.gauge("a/level").set(1.5);
        reg.histogram("c/lat").record(0.25);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.metrics.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["a/level", "b/count", "c/lat"]);
        assert_eq!(snap.counter("b/count"), 2);
        assert_eq!(snap.counter("a/level"), 0, "gauges don't read as counters");

        let back = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);

        let table = snap.to_table();
        assert!(table.contains("a/level"));
        assert!(table.contains("histogram"));
        let header_cols = table.lines().next().unwrap().find("value").unwrap();
        assert!(header_cols > "a/level".len(), "name column is padded");
    }
}
