//! The trace analysis engine: a streaming JSONL reader with integrity
//! checks, analyzers that reconstruct run-level views (per-region
//! profiles, per-cap energy summaries, search-convergence curves, cache
//! hit-rate timelines, §III-C overhead accounting), and a comparator for
//! run-to-run perf-regression gating.
//!
//! Everything operates on the versioned [`TraceRecord`] envelope the
//! `arcs-trace` sinks write, one record at a time — a multi-gigabyte
//! trace streams through [`TraceAnalysis`] in constant memory (the cache
//! timeline decimates itself, see [`CacheReport::timeline`]).

use arcs_trace::{Objective, TraceEvent, TraceRecord, SCHEMA_VERSION};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

/// Why a trace line could not be consumed.
#[derive(Debug)]
pub enum TraceReadError {
    Io(std::io::Error),
    /// Line `line` (1-based) is not a valid JSON record.
    Parse {
        line: usize,
        source: serde_json::Error,
    },
    /// The record was written by a schema this reader cannot understand
    /// (newer than [`SCHEMA_VERSION`], or not a real version at all);
    /// reading on would silently misinterpret fields. Older versions are
    /// fine — fields added since deserialize to their defaults.
    SchemaMismatch {
        line: usize,
        found: u32,
        expected: u32,
    },
    /// Sequence numbers must strictly increase within a file (sinks
    /// assign them from one atomic counter).
    NonMonotonicSeq {
        line: usize,
        prev: u64,
        seq: u64,
    },
}

impl fmt::Display for TraceReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceReadError::Io(e) => write!(f, "trace read failed: {e}"),
            TraceReadError::Parse { line, source } => {
                write!(f, "trace line {line}: invalid record: {source}")
            }
            TraceReadError::SchemaMismatch { line, found, expected } => {
                write!(f, "trace line {line}: schema {found}, this reader expects 1..={expected}")
            }
            TraceReadError::NonMonotonicSeq { line, prev, seq } => {
                write!(f, "trace line {line}: seq {seq} after {prev} (must strictly increase)")
            }
        }
    }
}

impl std::error::Error for TraceReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceReadError::Io(e) => Some(e),
            TraceReadError::Parse { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceReadError {
    fn from(e: std::io::Error) -> Self {
        TraceReadError::Io(e)
    }
}

/// Streaming JSONL reader yielding validated [`TraceRecord`]s.
///
/// Hard failures (parse errors, schema mismatch, out-of-order sequence
/// numbers) surface as `Err` items. *Gaps* in the sequence — legitimate
/// when a filtering sink dropped events, suspicious otherwise — are
/// counted ([`TraceReader::gaps`]) but do not stop the stream.
///
/// One deliberate exception: a parse failure on the *final* line of the
/// stream is treated as a crash-truncated trace (the writer died
/// mid-record — every earlier line is still a whole record, see
/// `JsonlSink`), so the stream ends cleanly with the lost record counted
/// as a sequence gap instead of failing the whole analysis.
pub struct TraceReader<R: BufRead> {
    lines: std::io::Lines<R>,
    line_no: usize,
    last_seq: Option<u64>,
    gaps: u64,
    /// A line pulled while peeking past a parse failure, to be consumed
    /// before the underlying iterator.
    lookahead: Option<String>,
}

impl TraceReader<BufReader<File>> {
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(TraceReader::new(BufReader::new(File::open(path)?)))
    }
}

impl<R: BufRead> TraceReader<R> {
    pub fn new(reader: R) -> Self {
        TraceReader { lines: reader.lines(), line_no: 0, last_seq: None, gaps: 0, lookahead: None }
    }

    /// Missing sequence numbers observed so far (`seq` jumped by more
    /// than one). A complete single-sink trace has zero.
    pub fn gaps(&self) -> u64 {
        self.gaps
    }
}

impl<R: BufRead> Iterator for TraceReader<R> {
    type Item = Result<TraceRecord, TraceReadError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let line = match self.lookahead.take() {
                Some(l) => l,
                None => {
                    let l = match self.lines.next()? {
                        Ok(l) => l,
                        Err(e) => return Some(Err(e.into())),
                    };
                    self.line_no += 1;
                    l
                }
            };
            if line.trim().is_empty() {
                continue;
            }
            let rec: TraceRecord = match serde_json::from_str(&line) {
                Ok(r) => r,
                Err(source) => {
                    let failed_line = self.line_no;
                    // Peek: if nothing but blank lines follows, this is a
                    // crash-truncated tail — count the half-written record
                    // as a gap and end the stream. Anything after it means
                    // mid-stream corruption, which stays a hard error.
                    loop {
                        match self.lines.next() {
                            None => {
                                self.gaps += 1;
                                return None;
                            }
                            Some(Err(e)) => return Some(Err(e.into())),
                            Some(Ok(l)) => {
                                self.line_no += 1;
                                if l.trim().is_empty() {
                                    continue;
                                }
                                self.lookahead = Some(l);
                                break;
                            }
                        }
                    }
                    return Some(Err(TraceReadError::Parse { line: failed_line, source }));
                }
            };
            if !(1..=SCHEMA_VERSION).contains(&rec.schema) {
                return Some(Err(TraceReadError::SchemaMismatch {
                    line: self.line_no,
                    found: rec.schema,
                    expected: SCHEMA_VERSION,
                }));
            }
            match self.last_seq {
                Some(prev) if rec.seq <= prev => {
                    return Some(Err(TraceReadError::NonMonotonicSeq {
                        line: self.line_no,
                        prev,
                        seq: rec.seq,
                    }));
                }
                Some(prev) => self.gaps += rec.seq - prev - 1,
                None => self.gaps += rec.seq, // sinks number from 0
            }
            self.last_seq = Some(rec.seq);
            return Some(Ok(rec));
        }
    }
}

/// Per-region profile reconstructed from `RegionEnd` events — the trace
/// counterpart of the live `OmptProfiler` rows.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RegionBreakdown {
    pub invocations: u64,
    /// Σ wall-clock invocation durations.
    pub wall_s: f64,
    /// Σ per-thread loop-body time (OMPT `OpenMP_LOOP`).
    pub busy_s: f64,
    /// Σ per-thread barrier wait (OMPT `OpenMP_BARRIER`).
    pub barrier_s: f64,
    pub energy_j: f64,
    /// `ConfigSwitch` events that named this region.
    pub config_switches: u64,
}

impl RegionBreakdown {
    /// Σ per-thread (busy + barrier) — `OpenMP_IMPLICIT_TASK`.
    pub fn implicit_task_s(&self) -> f64 {
        self.busy_s + self.barrier_s
    }

    pub fn mean_call_s(&self) -> f64 {
        if self.invocations > 0 {
            self.wall_s / self.invocations as f64
        } else {
            0.0
        }
    }

    /// Mean attributed package energy per invocation (joules).
    pub fn mean_call_j(&self) -> f64 {
        if self.invocations > 0 {
            self.energy_j / self.invocations as f64
        } else {
            0.0
        }
    }

    /// This region's mean per-call cost under `objective` — the quantity
    /// [`compare_reports_for`] gates on.
    pub fn mean_call_metric(&self, objective: Objective) -> f64 {
        objective.score(self.mean_call_s(), self.mean_call_j())
    }
}

/// Time/energy attributed to one power-cap setting (caps can change
/// mid-trace; segments with equal requested caps merge).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CapSegment {
    pub requested_w: f64,
    pub effective_w: f64,
    /// Σ region wall time executed under this cap.
    pub region_s: f64,
    pub energy_j: f64,
    pub invocations: u64,
}

impl CapSegment {
    /// Energy–delay product under this cap (the paper's Fig. 10/11
    /// objective).
    pub fn edp(&self) -> f64 {
        self.energy_j * self.region_s
    }
}

/// One point of a region's search-convergence curve (from
/// `SearchIteration` events). Values are in the unit of the trace's
/// [`TraceReport::objective`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ConvergencePoint {
    pub evaluations: u64,
    /// Objective value of the point measured at this iteration.
    pub value: f64,
    /// Best objective seen so far.
    pub best_value: f64,
    pub converged: bool,
}

/// Running cache hit rate after a prefix of lookups.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CachePoint {
    /// Lookups processed when this point was sampled.
    pub lookups: u64,
    pub hit_rate: f64,
}

/// Memo-cache behaviour over the run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheReport {
    pub hits: u64,
    pub misses: u64,
    /// Hit-rate curve, decimated by stride doubling to at most
    /// [`CACHE_TIMELINE_POINTS`] points so the report stays bounded on
    /// arbitrarily long traces.
    pub timeline: Vec<CachePoint>,
    /// Distinct cells resolved, from the end-of-run
    /// `TraceEvent::CacheStats` snapshot (v6; 0 in older traces).
    #[serde(default)]
    pub entries: u64,
    /// Cells per shard in shard order, from the snapshot (empty in older
    /// traces).
    #[serde(default)]
    pub shard_occupancy: Vec<u64>,
    /// Distinct region names interned, from the snapshot.
    #[serde(default)]
    pub interner_size: u64,
}

/// Upper bound on [`CacheReport::timeline`] length.
pub const CACHE_TIMELINE_POINTS: usize = 64;

impl CacheReport {
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    pub fn hit_rate(&self) -> f64 {
        let n = self.lookups();
        if n == 0 {
            0.0
        } else {
            self.hits as f64 / n as f64
        }
    }
}

/// §III-C overhead as charged by the driver (`OverheadCharged` events).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OverheadReport {
    pub events: u64,
    /// Σ `omp_set_num_threads`/`omp_set_schedule` cost.
    pub config_change_s: f64,
    /// Σ OMPT + APEX instrumentation cost.
    pub instrumentation_s: f64,
    /// Σ package energy drawn over overhead intervals (0 in pre-v3
    /// traces, which did not meter overhead energy).
    #[serde(default)]
    pub energy_j: f64,
}

impl OverheadReport {
    pub fn total_s(&self) -> f64 {
        self.config_change_s + self.instrumentation_s
    }
}

/// One run of consecutive invocations a region spent under a single chunk
/// policy, reconstructed from `RegionBegin` events (v8 `chunk_policy`,
/// with a fallback to the schedule clause's family prefix in older
/// traces). A region that never switches has exactly one segment.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PolicySegment {
    /// Policy family name (`static`, `dynamic`, …, `awf`).
    pub policy: String,
    /// 1-based invocation index of the region's first call under this
    /// policy.
    pub from_invocation: u64,
    /// Calls executed under this policy before the next switch (or run
    /// end).
    pub invocations: u64,
}

/// Time/energy a trace spent under one chunk policy, across all regions
/// — the per-policy slice of the region totals.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PolicyBreakdown {
    pub invocations: u64,
    /// Σ wall-clock durations of invocations run under this policy.
    pub wall_s: f64,
    pub energy_j: f64,
    /// `PolicySwitched` events that landed *on* this policy.
    pub switches_in: u64,
}

impl PolicyBreakdown {
    pub fn mean_call_s(&self) -> f64 {
        if self.invocations > 0 {
            self.wall_s / self.invocations as f64
        } else {
            0.0
        }
    }
}

/// Everything the analyzers reconstruct from one trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceReport {
    pub schema: u32,
    /// Records consumed.
    pub records: u64,
    /// Sequence gaps the reader observed (0 for a complete trace).
    pub seq_gaps: u64,
    /// Timeline position of the last `RegionEnd` — for sim-driver traces
    /// this is the run's total time, Σ region + Σ overhead, because the
    /// driver's clock advances by nothing else.
    pub wall_s: f64,
    /// Σ `RegionEnd` wall durations.
    pub total_region_s: f64,
    /// Σ `RegionEnd` attributed energy.
    pub total_energy_j: f64,
    pub regions: BTreeMap<String, RegionBreakdown>,
    pub caps: Vec<CapSegment>,
    /// Per-region convergence curves, keyed by region name.
    pub convergence: BTreeMap<String, Vec<ConvergencePoint>>,
    pub cache: CacheReport,
    pub overhead: OverheadReport,
    /// What the traced run's tuner minimised, from `SearchIteration`
    /// events (`Time` for untuned runs and pre-v3 traces).
    #[serde(default)]
    pub objective: Objective,
    /// The cumulative package-energy counter at the last `PowerSample` —
    /// `None` for traces without a package meter (live OMPT traces).
    #[serde(default)]
    pub final_energy_total_j: Option<f64>,
    /// Fault-injection and recovery activity (v4 traces; empty before).
    #[serde(default)]
    pub faults: FaultReport,
    /// Multi-tenant broker activity (v5 traces; empty before).
    #[serde(default)]
    pub broker: BrokerReport,
    /// Node outages, requeues and crash recovery (v9 traces; empty
    /// before).
    #[serde(default)]
    pub recovery: RecoveryReport,
    /// Wall-clock analysis throughput stamped by the producer (`arcs-sim
    /// report`): `RegionEnd` records — sweep "cells" — replayed per
    /// second of real time. `None` in older artifacts or when the
    /// producer did not time itself. The first slice of the ROADMAP's
    /// cells/sec trajectory: `arcs-sim compare` copies it into its
    /// artifact so `results/` accumulates a perf history run over run.
    #[serde(default)]
    pub cells_per_s: Option<f64>,
    /// The driver's wall-clock self-profile, summed over every v7
    /// `DriverPhases` event in the trace — `None` when the traced run
    /// did not self-profile (the default: the spans are real elapsed
    /// times and would break byte-identical traces).
    #[serde(default)]
    pub self_profile: Option<SelfProfile>,
    /// Per-region chunk-policy timeline (segments in invocation order).
    /// Empty for traces without `RegionBegin` events.
    #[serde(default)]
    pub policy_timeline: BTreeMap<String, Vec<PolicySegment>>,
    /// Per-policy time/energy totals across all regions.
    #[serde(default)]
    pub policies: BTreeMap<String, PolicyBreakdown>,
    /// `PolicySwitched` events observed (v8; 0 before).
    #[serde(default)]
    pub policy_switches: u64,
}

/// Where the *tool's own* time went while driving a run — tuner
/// bookkeeping, backend region execution, §III-C overhead charging and
/// meter reads — accumulated from [`TraceEvent::DriverPhases`]. This is
/// the ROADMAP item-4 "re-measure on real hardware" instrument: the
/// spans profile the driver, not the simulated application.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SelfProfile {
    /// `DriverPhases` events folded in (one per self-profiled run).
    pub runs: u64,
    /// Region invocations those runs drove.
    pub invocations: u64,
    pub tune_s: f64,
    pub measure_s: f64,
    pub overhead_s: f64,
    pub meter_s: f64,
}

impl SelfProfile {
    /// Σ of all phase spans.
    pub fn total_s(&self) -> f64 {
        self.tune_s + self.measure_s + self.overhead_s + self.meter_s
    }
}

/// One tenant's slice of the broker activity in a trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TenantBreakdown {
    /// `JobSubmitted` events naming this tenant.
    pub submitted: u64,
    /// `JobScheduled` events naming this tenant.
    pub scheduled: u64,
    /// `JobCompleted` events naming this tenant.
    pub completed: u64,
    /// Jobs admission control refused.
    pub rejected: u64,
    /// Completions whose final status was not `ok`.
    pub degraded: u64,
    /// Jobs that exhausted their retry budget (v9; 0 before).
    #[serde(default)]
    pub failed: u64,
    /// Jobs load-shedding turned away (v9; 0 before).
    #[serde(default)]
    pub shed: u64,
    /// Times this tenant's jobs were requeued off failed nodes (v9).
    #[serde(default)]
    pub requeued: u64,
    /// Σ completed-job run time.
    pub time_s: f64,
    /// Σ completed-job attributed energy.
    pub energy_j: f64,
    /// Σ node-level watts over every `CapReallocated` allocation owned
    /// by this tenant (one sample per job per event).
    pub alloc_w_sum: f64,
    /// Allocation samples behind [`alloc_w_sum`](Self::alloc_w_sum).
    pub alloc_samples: u64,
}

impl TenantBreakdown {
    /// Mean node-level watts this tenant held across reallocation
    /// points — the quantity the fairness ratio compares.
    pub fn mean_allocated_w(&self) -> f64 {
        if self.alloc_samples > 0 {
            self.alloc_w_sum / self.alloc_samples as f64
        } else {
            0.0
        }
    }
}

/// What the power-budget broker did over the trace, from the v5
/// `JobSubmitted`/`JobRejected`/`JobScheduled`/`CapReallocated`/
/// `JobCompleted` events.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BrokerReport {
    pub submitted: u64,
    pub scheduled: u64,
    pub completed: u64,
    pub rejected: u64,
    /// Jobs whose retry budget ran out, or that no surviving node could
    /// host (v9 `JobFailed`; 0 before).
    #[serde(default)]
    pub failed: u64,
    /// Jobs the bounded admission queue shed (v9 `JobShed`; 0 before).
    #[serde(default)]
    pub shed: u64,
    /// `CapReallocated` events observed.
    pub reallocations: u64,
    /// Global budget at the last reallocation point.
    pub budget_w: f64,
    /// Largest Σ allocations across all reallocation points.
    pub max_total_w: f64,
    /// Reallocation points where Σ allocations exceeded the budget —
    /// zero for any correct broker run (the conservation invariant).
    pub over_budget_events: u64,
    /// Per-tenant breakdown, keyed by tenant name.
    pub tenants: BTreeMap<String, TenantBreakdown>,
}

impl BrokerReport {
    /// Did the trace record any broker activity at all?
    pub fn any(&self) -> bool {
        self.submitted > 0
            || self.rejected > 0
            || self.reallocations > 0
            || self.completed > 0
            || self.failed > 0
            || self.shed > 0
    }

    /// Jobs that entered the broker but reached no terminal state —
    /// completed, rejected, failed (typed) or shed — by the end of the
    /// trace. Zero for any run the broker drained: every job must land
    /// somewhere, even under node faults.
    pub fn lost_jobs(&self) -> i64 {
        self.submitted as i64
            - self.completed as i64
            - self.rejected as i64
            - self.failed as i64
            - self.shed as i64
    }

    /// Fraction of submissions turned away by load shedding.
    pub fn shed_rate(&self) -> f64 {
        if self.submitted > 0 {
            self.shed as f64 / self.submitted as f64
        } else {
            0.0
        }
    }

    /// Max/min ratio of per-tenant mean allocated watts — 1.0 is
    /// perfectly fair. `None` until two tenants have held allocations.
    pub fn fairness_ratio(&self) -> Option<f64> {
        let means: Vec<f64> = self
            .tenants
            .values()
            .filter(|t| t.alloc_samples > 0)
            .map(TenantBreakdown::mean_allocated_w)
            .collect();
        if means.len() < 2 {
            return None;
        }
        let max = means.iter().cloned().fold(f64::MIN, f64::max);
        let min = means.iter().cloned().fold(f64::MAX, f64::min);
        if min > 0.0 {
            Some(max / min)
        } else {
            None
        }
    }
}

/// What a fault plan did to the run and how the stack recovered, from
/// the v4 `FaultInjected`/`MeasurementRejected`/`TunerDegraded` events.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultReport {
    /// `FaultInjected` events by fault class (`rapl_read`,
    /// `timer_spike`, …).
    pub injected: BTreeMap<String, u64>,
    /// Measurements the tuner rejected as outliers.
    pub rejected: u64,
    /// Regions the self-healing loop froze, in event order.
    pub degraded_regions: Vec<String>,
}

impl FaultReport {
    /// Total `FaultInjected` events across all classes.
    pub fn injected_total(&self) -> u64 {
        self.injected.values().sum()
    }

    /// Did the trace record any fault or recovery activity at all?
    pub fn any(&self) -> bool {
        !self.injected.is_empty() || self.rejected > 0 || !self.degraded_regions.is_empty()
    }
}

/// What node faults did to the fleet and how the broker recovered, from
/// the v9 `NodeFailed`/`NodeRecovered`/`JobRequeued`/
/// `CheckpointRecovered` events.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// `NodeFailed` events observed.
    pub node_failures: u64,
    /// Failures by class label (`crash`, `drain`).
    pub failures_by_class: BTreeMap<String, u64>,
    /// Failures flagged permanent — those nodes never recover.
    pub permanent_failures: u64,
    /// `NodeRecovered` events observed.
    pub node_recoveries: u64,
    /// Σ outage durations over all recoveries, virtual seconds.
    pub total_down_s: f64,
    /// `JobRequeued` events observed.
    pub requeues: u64,
    /// Broker restarts reconstructed by journal replay.
    pub checkpoint_recoveries: u64,
}

impl RecoveryReport {
    /// Did the trace record any node-fault activity at all?
    pub fn any(&self) -> bool {
        self.node_failures > 0 || self.requeues > 0 || self.checkpoint_recoveries > 0
    }

    /// Mean time to recovery over observed outages — `None` until a
    /// node has actually come back.
    pub fn mttr_s(&self) -> Option<f64> {
        if self.node_recoveries > 0 {
            Some(self.total_down_s / self.node_recoveries as f64)
        } else {
            None
        }
    }
}

impl TraceReport {
    /// `wall_s − Σ region − Σ overhead`. For traces produced by the sim
    /// driver this must be ~0: the driver's clock advances *only* by
    /// region time plus charged §III-C overhead, so any residual means
    /// the trace and the driver disagree about where time went. Live
    /// traces have real inter-region gaps — don't assert there.
    pub fn overhead_residual_s(&self) -> f64 {
        self.wall_s - self.total_region_s - self.overhead.total_s()
    }

    /// The overhead cross-check: is the residual negligible relative to
    /// the run length?
    pub fn overhead_consistent(&self) -> bool {
        self.overhead_residual_s().abs() <= 1e-6 * self.wall_s.abs().max(1.0)
    }

    /// The energy counterpart of [`overhead_residual_s`]: package meter −
    /// Σ region energy − Σ overhead energy. The driver differences every
    /// invocation and overhead interval from one meter, so for sim-driver
    /// traces this must be ~0 (float differencing does not telescope
    /// exactly). `None` when the trace carries no `PowerSample` — live
    /// OMPT traces have no package meter.
    ///
    /// [`overhead_residual_s`]: TraceReport::overhead_residual_s
    pub fn energy_residual_j(&self) -> Option<f64> {
        self.final_energy_total_j.map(|total| total - self.total_energy_j - self.overhead.energy_j)
    }

    /// The energy-ledger cross-check; vacuously true for meterless
    /// traces.
    pub fn energy_consistent(&self) -> bool {
        match self.energy_residual_j() {
            Some(res) => {
                res.abs() <= 1e-6 * self.final_energy_total_j.unwrap_or(0.0).abs().max(1.0)
            }
            None => true,
        }
    }

    /// The whole-run cost under `objective` — the TOTAL row of
    /// [`compare_reports_for`].
    pub fn total_metric(&self, objective: Objective) -> f64 {
        objective.score(self.wall_s, self.total_energy_j)
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Aligned plain-text rendering (the `arcs-sim report` default).
    pub fn to_table(&self) -> String {
        self.render(false)
    }

    /// GitHub-flavoured markdown rendering.
    pub fn to_markdown(&self) -> String {
        self.render(true)
    }

    fn render(&self, md: bool) -> String {
        let mut out = String::new();
        let h = |out: &mut String, title: &str| {
            if md {
                out.push_str(&format!("\n## {title}\n\n"));
            } else {
                out.push_str(&format!("\n=== {title} ===\n"));
            }
        };

        out.push_str(&format!(
            "trace: schema v{}, {} records, {} seq gap(s), objective {}\n",
            self.schema, self.records, self.seq_gaps, self.objective
        ));
        out.push_str(&format!(
            "wall {:.4} s | region {:.4} s | overhead {:.4} s | energy {:.1} J\n",
            self.wall_s,
            self.total_region_s,
            self.overhead.total_s(),
            self.total_energy_j
        ));
        if let Some(cps) = self.cells_per_s {
            out.push_str(&format!("analysis throughput: {cps:.0} cells/s (wall clock)\n"));
        }

        h(&mut out, "Regions");
        let name_w = self.regions.keys().map(|k| k.len()).max().unwrap_or(6).max("region".len());
        if md {
            out.push_str(&format!(
                "| {:<name_w$} | calls | wall s | mean s | loop s | barrier s | energy J | switches |\n",
                "region"
            ));
            out.push_str(&format!(
                "|{:-<w$}|------:|-------:|-------:|-------:|----------:|---------:|---------:|\n",
                "",
                w = name_w + 2
            ));
        } else {
            out.push_str(&format!(
                "{:<name_w$}  {:>6}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}  {:>8}\n",
                "region",
                "calls",
                "wall s",
                "mean s",
                "loop s",
                "barrier s",
                "energy J",
                "switches"
            ));
        }
        for (name, r) in &self.regions {
            if md {
                out.push_str(&format!(
                    "| {:<name_w$} | {} | {:.4} | {:.6} | {:.4} | {:.4} | {:.1} | {} |\n",
                    name,
                    r.invocations,
                    r.wall_s,
                    r.mean_call_s(),
                    r.busy_s,
                    r.barrier_s,
                    r.energy_j,
                    r.config_switches
                ));
            } else {
                out.push_str(&format!(
                    "{:<name_w$}  {:>6}  {:>10.4}  {:>10.6}  {:>10.4}  {:>10.4}  {:>10.1}  {:>8}\n",
                    name,
                    r.invocations,
                    r.wall_s,
                    r.mean_call_s(),
                    r.busy_s,
                    r.barrier_s,
                    r.energy_j,
                    r.config_switches
                ));
            }
        }

        if !self.policies.is_empty() {
            h(&mut out, "Scheduling policies");
            if self.policy_switches > 0 {
                out.push_str(&format!("{} intra-run policy switch(es)\n", self.policy_switches));
            }
            for (policy, p) in &self.policies {
                out.push_str(&format!(
                    "{}{policy}: {} invocation(s), {:.4} s ({:.6} s/call), {:.1} J{}\n",
                    if md { "- " } else { "  " },
                    p.invocations,
                    p.wall_s,
                    p.mean_call_s(),
                    p.energy_j,
                    if p.switches_in > 0 {
                        format!(", switched-to {}×", p.switches_in)
                    } else {
                        String::new()
                    }
                ));
            }
            // Timeline lines only for regions that actually switched —
            // single-policy regions are fully described by the table above.
            for (region, segs) in &self.policy_timeline {
                if segs.len() > 1 {
                    let spans: Vec<String> = segs
                        .iter()
                        .map(|s| format!("{}@{}..+{}", s.policy, s.from_invocation, s.invocations))
                        .collect();
                    out.push_str(&format!(
                        "{}{region}: {}\n",
                        if md { "- timeline " } else { "  timeline " },
                        spans.join(" → ")
                    ));
                }
            }
        }

        h(&mut out, "Power caps");
        for c in &self.caps {
            out.push_str(&format!(
                "{}cap {:.0} W (effective {:.1} W): {} invocation(s), {:.4} s, {:.1} J, EDP {:.2}\n",
                if md { "- " } else { "" },
                c.requested_w,
                c.effective_w,
                c.invocations,
                c.region_s,
                c.energy_j,
                c.edp()
            ));
        }

        if !self.convergence.is_empty() {
            h(&mut out, "Search convergence");
            for (region, curve) in &self.convergence {
                let last = curve.last().expect("curves are non-empty");
                out.push_str(&format!(
                    "{}{region}: {} evaluation(s), best {:.6} {}{}\n",
                    if md { "- " } else { "" },
                    last.evaluations,
                    last.best_value,
                    self.objective.unit(),
                    if last.converged { ", converged" } else { "" }
                ));
                let steps: Vec<String> = decimate(curve, 8)
                    .iter()
                    .map(|p| format!("{}:{:.4}", p.evaluations, p.best_value))
                    .collect();
                out.push_str(&format!(
                    "{}best-so-far  {}\n",
                    if md { "  " } else { "    " },
                    steps.join(" → ")
                ));
            }
        }

        h(&mut out, "Sim cache");
        out.push_str(&format!(
            "{} hit(s), {} miss(es), hit rate {:.1}%\n",
            self.cache.hits,
            self.cache.misses,
            100.0 * self.cache.hit_rate()
        ));
        if self.cache.entries > 0 {
            let occ = &self.cache.shard_occupancy;
            let (min, max) =
                (occ.iter().min().copied().unwrap_or(0), occ.iter().max().copied().unwrap_or(0));
            out.push_str(&format!(
                "{} distinct cell(s) across {} shard(s) (occupancy {min}–{max}), \
                 {} region name(s) interned\n",
                self.cache.entries,
                occ.len(),
                self.cache.interner_size
            ));
        }

        h(&mut out, "Overhead (§III-C)");
        out.push_str(&format!(
            "{} event(s): config change {:.4} s + instrumentation {:.4} s = {:.4} s\n",
            self.overhead.events,
            self.overhead.config_change_s,
            self.overhead.instrumentation_s,
            self.overhead.total_s()
        ));
        out.push_str(&format!(
            "cross-check: wall − region − overhead = {:+.3e} s ({})\n",
            self.overhead_residual_s(),
            if self.overhead_consistent() { "consistent" } else { "INCONSISTENT" }
        ));
        if let Some(res) = self.energy_residual_j() {
            out.push_str(&format!(
                "energy ledger: meter − region − overhead = {:+.3e} J ({})\n",
                res,
                if self.energy_consistent() { "consistent" } else { "INCONSISTENT" }
            ));
        }

        if let Some(p) = &self.self_profile {
            h(&mut out, "Self-profile (where did the time go)");
            let total = p.total_s();
            out.push_str(&format!(
                "{} run(s), {} invocation(s): driver wall {:.4} s\n",
                p.runs, p.invocations, total
            ));
            let pct = |s: f64| if total > 0.0 { 100.0 * s / total } else { 0.0 };
            for (name, s) in [
                ("measure", p.measure_s),
                ("tune", p.tune_s),
                ("overhead", p.overhead_s),
                ("meter", p.meter_s),
            ] {
                out.push_str(&format!(
                    "{}{:<8}  {:>10.6} s  ({:>5.1}%)\n",
                    if md { "- " } else { "  " },
                    name,
                    s,
                    pct(s)
                ));
            }
            if p.invocations > 0 {
                out.push_str(&format!(
                    "per invocation: {:.1} µs\n",
                    1e6 * total / p.invocations as f64
                ));
            }
        }

        if self.faults.any() {
            h(&mut out, "Faults & recovery");
            let classes: Vec<String> =
                self.faults.injected.iter().map(|(k, n)| format!("{k} ×{n}")).collect();
            out.push_str(&format!(
                "{} fault(s) injected ({}), {} measurement(s) rejected\n",
                self.faults.injected_total(),
                if classes.is_empty() { "none".to_string() } else { classes.join(", ") },
                self.faults.rejected
            ));
            if self.faults.degraded_regions.is_empty() {
                out.push_str("tuner degraded: no\n");
            } else {
                out.push_str(&format!(
                    "tuner degraded: {} region(s) frozen ({})\n",
                    self.faults.degraded_regions.len(),
                    self.faults.degraded_regions.join(", ")
                ));
            }
        }

        if self.broker.any() {
            h(&mut out, "Broker");
            out.push_str(&format!(
                "{} submitted, {} scheduled, {} completed, {} rejected, {} failed, {} shed, \
                 {} lost\n",
                self.broker.submitted,
                self.broker.scheduled,
                self.broker.completed,
                self.broker.rejected,
                self.broker.failed,
                self.broker.shed,
                self.broker.lost_jobs()
            ));
            out.push_str(&format!(
                "budget {:.1} W, peak allocation {:.1} W, {} reallocation(s), {}\n",
                self.broker.budget_w,
                self.broker.max_total_w,
                self.broker.reallocations,
                if self.broker.over_budget_events == 0 {
                    "budget conserved".to_string()
                } else {
                    format!("{} OVER-BUDGET event(s)", self.broker.over_budget_events)
                }
            ));
            if let Some(ratio) = self.broker.fairness_ratio() {
                out.push_str(&format!("fairness (max/min mean tenant share): {ratio:.3}\n"));
            }
            for (name, t) in &self.broker.tenants {
                out.push_str(&format!(
                    "{}{name}: {}/{} job(s) completed ({} degraded, {} rejected), \
                     mean share {:.1} W, {:.2} s, {:.0} J\n",
                    if md { "- " } else { "  " },
                    t.completed,
                    t.submitted,
                    t.degraded,
                    t.rejected,
                    t.mean_allocated_w(),
                    t.time_s,
                    t.energy_j
                ));
            }
        }

        if self.recovery.any() {
            h(&mut out, "Resilience");
            let classes: Vec<String> =
                self.recovery.failures_by_class.iter().map(|(k, n)| format!("{k} ×{n}")).collect();
            out.push_str(&format!(
                "{} node failure(s) ({}), {} permanent, {} recover(ies)\n",
                self.recovery.node_failures,
                if classes.is_empty() { "none".to_string() } else { classes.join(", ") },
                self.recovery.permanent_failures,
                self.recovery.node_recoveries
            ));
            match self.recovery.mttr_s() {
                Some(mttr) => out.push_str(&format!("MTTR: {mttr:.3} s (virtual)\n")),
                None => out.push_str("MTTR: n/a (no recoveries observed)\n"),
            }
            out.push_str(&format!(
                "{} requeue(s), shed rate {:.1}%, {} checkpoint recover(ies)\n",
                self.recovery.requeues,
                100.0 * self.broker.shed_rate(),
                self.recovery.checkpoint_recoveries
            ));
        }
        out
    }
}

/// Evenly sample at most `max` points from a curve, always keeping the
/// last point.
fn decimate<T: Copy>(curve: &[T], max: usize) -> Vec<T> {
    if curve.len() <= max {
        return curve.to_vec();
    }
    let step = curve.len().div_ceil(max);
    let mut out: Vec<T> = curve.iter().copied().step_by(step).collect();
    if let Some(&last) = curve.last() {
        out.push(last);
    }
    out
}

/// Streaming consumer building a [`TraceReport`].
///
/// Feed records in file order via [`consume`](TraceAnalysis::consume);
/// call [`finish`](TraceAnalysis::finish) once. State is O(regions +
/// caps + iterations), independent of trace length except for the
/// convergence curves (one point per `SearchIteration`, which the tuner
/// bounds per region).
#[derive(Default)]
pub struct TraceAnalysis {
    report: TraceReport,
    current_cap: Option<usize>,
    timeline_stride: u64,
    since_last_point: u64,
    /// job id → tenant, learned from `JobSubmitted`/`JobScheduled`, so
    /// `CapReallocated` allocations can be attributed per tenant.
    job_tenants: BTreeMap<u64, String>,
    /// region → chunk policy announced by its latest `RegionBegin`, so
    /// `RegionEnd` totals can be attributed per policy.
    region_policy: BTreeMap<String, String>,
}

impl TraceAnalysis {
    pub fn new() -> Self {
        TraceAnalysis { timeline_stride: 1, ..Default::default() }
    }

    pub fn consume(&mut self, rec: &TraceRecord) {
        let r = &mut self.report;
        r.records += 1;
        r.schema = rec.schema;
        match &rec.event {
            TraceEvent::RegionEnd { region, time_s, energy_j, busy_s, barrier_s, .. } => {
                let b = r.regions.entry(region.clone()).or_default();
                b.invocations += 1;
                b.wall_s += time_s;
                b.busy_s += busy_s;
                b.barrier_s += barrier_s;
                b.energy_j += energy_j;
                r.total_region_s += time_s;
                r.total_energy_j += energy_j;
                if let Some(t) = rec.t_s {
                    r.wall_s = r.wall_s.max(t);
                }
                if let Some(i) = self.current_cap {
                    let seg = &mut r.caps[i];
                    seg.region_s += time_s;
                    seg.energy_j += energy_j;
                    seg.invocations += 1;
                }
                if let Some(policy) = self.region_policy.get(region) {
                    let p = r.policies.entry(policy.clone()).or_default();
                    p.invocations += 1;
                    p.wall_s += time_s;
                    p.energy_j += energy_j;
                }
            }
            TraceEvent::CapChange { requested_w, effective_w } => {
                let existing = r.caps.iter().position(|c| c.requested_w == *requested_w);
                self.current_cap = Some(existing.unwrap_or_else(|| {
                    r.caps.push(CapSegment {
                        requested_w: *requested_w,
                        effective_w: *effective_w,
                        ..Default::default()
                    });
                    r.caps.len() - 1
                }));
            }
            TraceEvent::SearchIteration {
                region,
                evaluations,
                value,
                best_value,
                converged,
                objective,
                ..
            } => {
                r.objective = *objective;
                r.convergence.entry(region.clone()).or_default().push(ConvergencePoint {
                    evaluations: *evaluations,
                    value: *value,
                    best_value: *best_value,
                    converged: *converged,
                });
            }
            TraceEvent::ConfigSwitch { region, .. } => {
                r.regions.entry(region.clone()).or_default().config_switches += 1;
            }
            TraceEvent::OverheadCharged {
                config_change_s, instrumentation_s, energy_j, ..
            } => {
                r.overhead.events += 1;
                r.overhead.config_change_s += config_change_s;
                r.overhead.instrumentation_s += instrumentation_s;
                r.overhead.energy_j += energy_j;
            }
            TraceEvent::PowerSample { energy_total_j, .. } => {
                r.final_energy_total_j = Some(*energy_total_j);
            }
            TraceEvent::CacheHit { .. } => self.cache_lookup(true),
            TraceEvent::CacheMiss { .. } => self.cache_lookup(false),
            TraceEvent::CacheStats { entries, shard_occupancy, interner_size, .. } => {
                r.cache.entries = *entries;
                r.cache.shard_occupancy = shard_occupancy.clone();
                r.cache.interner_size = *interner_size;
            }
            TraceEvent::FaultInjected { kind, .. } => {
                *r.faults.injected.entry(kind.clone()).or_default() += 1;
            }
            TraceEvent::MeasurementRejected { .. } => r.faults.rejected += 1,
            TraceEvent::TunerDegraded { region, .. } => {
                r.faults.degraded_regions.push(region.clone());
            }
            TraceEvent::JobSubmitted { job, tenant, .. } => {
                r.broker.submitted += 1;
                r.broker.tenants.entry(tenant.clone()).or_default().submitted += 1;
                self.job_tenants.insert(*job, tenant.clone());
            }
            TraceEvent::JobRejected { job, tenant, .. } => {
                r.broker.rejected += 1;
                r.broker.tenants.entry(tenant.clone()).or_default().rejected += 1;
                self.job_tenants.remove(job);
            }
            TraceEvent::JobScheduled { job, tenant, .. } => {
                r.broker.scheduled += 1;
                r.broker.tenants.entry(tenant.clone()).or_default().scheduled += 1;
                self.job_tenants.entry(*job).or_insert_with(|| tenant.clone());
            }
            TraceEvent::CapReallocated { budget_w, total_w, allocations, .. } => {
                r.broker.reallocations += 1;
                r.broker.budget_w = *budget_w;
                let alloc_sum: f64 = allocations.iter().map(|a| a.cap_w).sum();
                let total = total_w.max(alloc_sum);
                r.broker.max_total_w = r.broker.max_total_w.max(total);
                if total > budget_w * (1.0 + 1e-9) + 1e-9 {
                    r.broker.over_budget_events += 1;
                }
                for a in allocations {
                    if let Some(tenant) = self.job_tenants.get(&a.job) {
                        let t = r.broker.tenants.entry(tenant.clone()).or_default();
                        t.alloc_w_sum += a.cap_w;
                        t.alloc_samples += 1;
                    }
                }
            }
            TraceEvent::JobCompleted { job, tenant, status, time_s, energy_j, .. } => {
                r.broker.completed += 1;
                let t = r.broker.tenants.entry(tenant.clone()).or_default();
                t.completed += 1;
                if status != "ok" {
                    t.degraded += 1;
                }
                t.time_s += time_s;
                t.energy_j += energy_j;
                self.job_tenants.remove(job);
            }
            TraceEvent::DriverPhases {
                invocations,
                tune_s,
                measure_s,
                overhead_s,
                meter_s,
                ..
            } => {
                let p = r.self_profile.get_or_insert_with(SelfProfile::default);
                p.runs += 1;
                p.invocations += invocations;
                p.tune_s += tune_s;
                p.measure_s += measure_s;
                p.overhead_s += overhead_s;
                p.meter_s += meter_s;
            }
            TraceEvent::RegionBegin { region, schedule, chunk_policy, .. } => {
                // v8 traces carry the family name; older traces fall back
                // to the schedule clause's `family,chunk` prefix.
                let policy = if chunk_policy.is_empty() {
                    schedule.split(',').next().unwrap_or_default().to_string()
                } else {
                    chunk_policy.clone()
                };
                if policy.is_empty() {
                    return;
                }
                let timeline = r.policy_timeline.entry(region.clone()).or_default();
                let invocation = timeline.iter().map(|s| s.invocations).sum::<u64>() + 1;
                match timeline.last_mut() {
                    Some(seg) if seg.policy == policy => seg.invocations += 1,
                    _ => timeline.push(PolicySegment {
                        policy: policy.clone(),
                        from_invocation: invocation,
                        invocations: 1,
                    }),
                }
                self.region_policy.insert(region.clone(), policy);
            }
            TraceEvent::PolicySwitched { to, .. } => {
                r.policy_switches += 1;
                r.policies.entry(to.clone()).or_default().switches_in += 1;
            }
            TraceEvent::NodeFailed { class, permanent, .. } => {
                r.recovery.node_failures += 1;
                *r.recovery.failures_by_class.entry(class.clone()).or_default() += 1;
                if *permanent {
                    r.recovery.permanent_failures += 1;
                }
            }
            TraceEvent::NodeRecovered { down_s, .. } => {
                r.recovery.node_recoveries += 1;
                r.recovery.total_down_s += down_s;
            }
            TraceEvent::JobRequeued { tenant, .. } => {
                r.recovery.requeues += 1;
                r.broker.tenants.entry(tenant.clone()).or_default().requeued += 1;
            }
            TraceEvent::JobFailed { job, tenant, .. } => {
                r.broker.failed += 1;
                r.broker.tenants.entry(tenant.clone()).or_default().failed += 1;
                self.job_tenants.remove(job);
            }
            TraceEvent::JobShed { job, tenant, .. } => {
                r.broker.shed += 1;
                r.broker.tenants.entry(tenant.clone()).or_default().shed += 1;
                self.job_tenants.remove(job);
            }
            TraceEvent::CheckpointRecovered { .. } => {
                r.recovery.checkpoint_recoveries += 1;
            }
            TraceEvent::BrokerConfigured { budget_w, .. } => {
                r.broker.budget_w = *budget_w;
            }
            TraceEvent::PolicyFired { .. } | TraceEvent::BrokerStep {} => {}
        }
    }

    fn cache_lookup(&mut self, hit: bool) {
        let c = &mut self.report.cache;
        if hit {
            c.hits += 1;
        } else {
            c.misses += 1;
        }
        self.since_last_point += 1;
        if self.since_last_point >= self.timeline_stride {
            self.since_last_point = 0;
            c.timeline.push(CachePoint { lookups: c.lookups(), hit_rate: c.hit_rate() });
            if c.timeline.len() >= CACHE_TIMELINE_POINTS {
                // Stride-doubling decimation: keep every other point and
                // sample half as often from here on.
                let kept: Vec<CachePoint> = c.timeline.iter().copied().skip(1).step_by(2).collect();
                c.timeline = kept;
                self.timeline_stride *= 2;
            }
        }
    }

    pub fn finish(mut self, seq_gaps: u64) -> TraceReport {
        self.report.seq_gaps = seq_gaps;
        self.report
    }
}

/// Read and analyze a whole trace stream.
pub fn analyze<R: BufRead>(mut reader: TraceReader<R>) -> Result<TraceReport, TraceReadError> {
    let mut analysis = TraceAnalysis::new();
    for rec in reader.by_ref() {
        analysis.consume(&rec?);
    }
    Ok(analysis.finish(reader.gaps()))
}

/// [`analyze`] a trace file on disk.
pub fn analyze_path(path: impl AsRef<Path>) -> Result<TraceReport, TraceReadError> {
    analyze(TraceReader::open(path)?)
}

/// One compared quantity in a [`Comparison`]. Despite the `_s` suffix
/// (kept for artifact compatibility), values are in the comparison
/// objective's unit: seconds, joules, or joule-seconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompareRow {
    /// Region name, or `"TOTAL"` for the whole-run row.
    pub name: String,
    pub baseline_s: f64,
    pub candidate_s: f64,
    /// `100 × (candidate − baseline) / baseline`; 0 when the baseline is 0.
    pub delta_pct: f64,
    /// `delta_pct` strictly exceeds the threshold (so two identical runs
    /// pass even at `--fail-on 0`).
    pub regression: bool,
}

/// Result of gating a candidate run against a baseline.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// Threshold in percent: any row slower by strictly more than this
    /// regresses.
    pub fail_on_pct: f64,
    /// `TOTAL` first, then regions sorted by name.
    pub rows: Vec<CompareRow>,
    /// Regions present only in the baseline (reported, never failed —
    /// a renamed region should not brick CI).
    pub missing_in_candidate: Vec<String>,
    /// Regions present only in the candidate.
    pub new_in_candidate: Vec<String>,
    /// What the rows measure (`Time` in pre-objective artifacts).
    #[serde(default)]
    pub objective: Objective,
    /// Wall-clock analysis throughput carried over from the baseline
    /// report (`None` when the baseline artifact predates the field).
    /// Recorded but not gated on by default — wall-clock numbers are too
    /// noisy to fail CI at tight thresholds — unless the caller opts in
    /// via [`Comparison::with_throughput_gate`] with a generous margin.
    #[serde(default)]
    pub baseline_cells_per_s: Option<f64>,
    /// Wall-clock analysis throughput from the candidate report.
    #[serde(default)]
    pub candidate_cells_per_s: Option<f64>,
    /// Optional throughput gate: the comparison regresses when the
    /// candidate's cells/s falls strictly more than this many percent
    /// below the baseline's. `None` (the default) keeps throughput
    /// informational — wall-clock numbers are noisy, so gating is opt-in
    /// and thresholds should be generous.
    #[serde(default)]
    pub fail_on_throughput_pct: Option<f64>,
}

impl Comparison {
    pub fn regressed(&self) -> bool {
        self.rows.iter().any(|r| r.regression) || self.throughput_regressed()
    }

    /// Did the candidate's wall-clock throughput fall below the gated
    /// floor? Always false without a gate or when either report predates
    /// the `cells_per_s` field.
    pub fn throughput_regressed(&self) -> bool {
        match (self.fail_on_throughput_pct, self.baseline_cells_per_s, self.candidate_cells_per_s) {
            (Some(pct), Some(base), Some(cand)) if base > 0.0 => cand < base * (1.0 - pct / 100.0),
            _ => false,
        }
    }

    /// Enable the throughput gate at `pct` percent below baseline.
    pub fn with_throughput_gate(mut self, pct: f64) -> Self {
        self.fail_on_throughput_pct = Some(pct);
        self
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("comparison serializes")
    }

    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    pub fn to_table(&self) -> String {
        let name_w = self.rows.iter().map(|r| r.name.len()).max().unwrap_or(4).max("name".len());
        let unit = self.objective.unit();
        let mut out = format!(
            "objective: {}\n{:<name_w$}  {:>12}  {:>12}  {:>8}  verdict\n",
            self.objective,
            "name",
            format!("baseline {unit}"),
            format!("candidate {unit}"),
            "delta"
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{:<name_w$}  {:>12.6}  {:>12.6}  {:>+7.2}%  {}\n",
                r.name,
                r.baseline_s,
                r.candidate_s,
                r.delta_pct,
                if r.regression { "REGRESSION" } else { "ok" }
            ));
        }
        for m in &self.missing_in_candidate {
            out.push_str(&format!("{m}: missing in candidate\n"));
        }
        for m in &self.new_in_candidate {
            out.push_str(&format!("{m}: new in candidate\n"));
        }
        if self.baseline_cells_per_s.is_some() || self.candidate_cells_per_s.is_some() {
            let fmt = |v: Option<f64>| match v {
                Some(c) => format!("{c:.0}"),
                None => "-".to_string(),
            };
            match self.fail_on_throughput_pct {
                Some(pct) => out.push_str(&format!(
                    "cells/s (wall clock, gated at -{pct}%): baseline {} → candidate {} — {}\n",
                    fmt(self.baseline_cells_per_s),
                    fmt(self.candidate_cells_per_s),
                    if self.throughput_regressed() { "REGRESSION" } else { "ok" }
                )),
                None => out.push_str(&format!(
                    "cells/s (wall clock, informational): baseline {} → candidate {}\n",
                    fmt(self.baseline_cells_per_s),
                    fmt(self.candidate_cells_per_s)
                )),
            }
        }
        out.push_str(&format!(
            "threshold {}%: {}\n",
            self.fail_on_pct,
            if self.regressed() { "FAIL" } else { "pass" }
        ));
        out
    }
}

/// Gate `candidate` against `baseline` on wall time: the whole-run wall
/// time and every shared region's mean invocation time must not be slower
/// by strictly more than `fail_on_pct` percent. Equivalent to
/// [`compare_reports_for`] with [`Objective::Time`].
pub fn compare_reports(
    baseline: &TraceReport,
    candidate: &TraceReport,
    fail_on_pct: f64,
) -> Comparison {
    compare_reports_for(baseline, candidate, fail_on_pct, Objective::Time)
}

/// Gate `candidate` against `baseline` under an explicit objective: the
/// whole-run total (wall time / attributed energy / their product) and
/// every shared region's mean per-invocation metric must not regress by
/// strictly more than `fail_on_pct` percent.
pub fn compare_reports_for(
    baseline: &TraceReport,
    candidate: &TraceReport,
    fail_on_pct: f64,
    objective: Objective,
) -> Comparison {
    let row = |name: &str, base: f64, cand: f64| {
        let delta_pct = if base > 0.0 { 100.0 * (cand - base) / base } else { 0.0 };
        CompareRow {
            name: name.to_string(),
            baseline_s: base,
            candidate_s: cand,
            delta_pct,
            regression: delta_pct > fail_on_pct,
        }
    };
    let mut rows =
        vec![row("TOTAL", baseline.total_metric(objective), candidate.total_metric(objective))];
    let mut missing = Vec::new();
    for (name, b) in &baseline.regions {
        match candidate.regions.get(name) {
            Some(c) => {
                rows.push(row(name, b.mean_call_metric(objective), c.mean_call_metric(objective)))
            }
            None => missing.push(name.clone()),
        }
    }
    let new_in_candidate: Vec<String> =
        candidate.regions.keys().filter(|k| !baseline.regions.contains_key(*k)).cloned().collect();
    Comparison {
        fail_on_pct,
        rows,
        missing_in_candidate: missing,
        new_in_candidate,
        objective,
        baseline_cells_per_s: baseline.cells_per_s,
        candidate_cells_per_s: candidate.cells_per_s,
        fail_on_throughput_pct: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arcs_trace::TraceEvent as E;

    fn jsonl(records: &[TraceRecord]) -> String {
        let mut out = String::new();
        for r in records {
            out.push_str(&serde_json::to_string(r).unwrap());
            out.push('\n');
        }
        out
    }

    fn rec(seq: u64, t_s: Option<f64>, event: E) -> TraceRecord {
        TraceRecord { schema: SCHEMA_VERSION, seq, t_s, event }
    }

    /// A miniature driver-shaped trace: one cap, two regions, a tuning
    /// step with overhead, cache traffic.
    fn sample_trace() -> Vec<TraceRecord> {
        let mut seq = 0;
        let mut next = |t_s: Option<f64>, event: E| {
            let r = rec(seq, t_s, event);
            seq += 1;
            r
        };
        let mut t = 0.0;
        let mut etot = 0.0;
        let mut records =
            vec![next(Some(0.0), E::CapChange { requested_w: 80.0, effective_w: 80.0 })];
        for i in 0..3u64 {
            records.push(next(
                Some(t),
                E::ConfigSwitch { region: "rhs".into(), threads: 8, schedule: "static".into() },
            ));
            etot += 0.1;
            records.push(next(
                Some(t),
                E::OverheadCharged {
                    region: "rhs".into(),
                    config_change_s: 0.008,
                    instrumentation_s: 0.001,
                    energy_j: 0.1,
                },
            ));
            records.push(next(
                Some(t + 0.009),
                E::RegionBegin {
                    region: "rhs".into(),
                    threads: 8,
                    schedule: "static".into(),
                    chunk_policy: "static".into(),
                },
            ));
            records.push(next(
                None,
                if i == 0 {
                    E::CacheMiss { region: "rhs".into() }
                } else {
                    E::CacheHit { region: "rhs".into() }
                },
            ));
            t += 0.009 + 0.5;
            etot += 40.0;
            records.push(next(
                Some(t),
                E::RegionEnd {
                    region: "rhs".into(),
                    time_s: 0.5,
                    energy_j: 40.0,
                    busy_s: 3.6,
                    barrier_s: 0.4,
                    objective_value: Some(0.5),
                },
            ));
            records.push(next(Some(t), E::PowerSample { power_w: 80.0, energy_total_j: etot }));
            records.push(next(
                Some(t),
                E::SearchIteration {
                    region: "rhs".into(),
                    evaluations: i + 1,
                    point: vec![i as usize, 0],
                    value: 0.5 - 0.01 * i as f64,
                    best_point: vec![i as usize, 0],
                    best_value: 0.5 - 0.01 * i as f64,
                    converged: i == 2,
                    simplex: vec![],
                    objective: Objective::Time,
                },
            ));
            t += 0.25;
            etot += 18.0;
            records.push(next(
                Some(t),
                E::RegionEnd {
                    region: "zsolve".into(),
                    time_s: 0.25,
                    energy_j: 18.0,
                    busy_s: 1.9,
                    barrier_s: 0.1,
                    objective_value: None,
                },
            ));
            records.push(next(Some(t), E::PowerSample { power_w: 72.0, energy_total_j: etot }));
        }
        records
    }

    #[test]
    fn reader_validates_schema_and_sequence() {
        let good = jsonl(&sample_trace());
        let n = TraceReader::new(good.as_bytes()).filter(|r| r.is_ok()).count();
        assert_eq!(n, sample_trace().len());

        // Older schema versions still parse (their fields are a strict
        // subset of the current layout)...
        let old_schema =
            jsonl(&[TraceRecord { schema: 1, ..rec(0, None, E::CacheHit { region: "r".into() }) }]);
        assert!(TraceReader::new(old_schema.as_bytes()).next().unwrap().is_ok());

        // ...while versions the reader cannot know — newer, or not a real
        // version at all — are hard errors.
        for bad in [0u32, SCHEMA_VERSION + 1] {
            let bad_schema = jsonl(&[TraceRecord {
                schema: bad,
                ..rec(0, None, E::CacheHit { region: "r".into() })
            }]);
            let err = TraceReader::new(bad_schema.as_bytes()).next().unwrap().unwrap_err();
            assert!(
                matches!(err, TraceReadError::SchemaMismatch { found, .. } if found == bad),
                "{err}"
            );
        }

        let out_of_order = jsonl(&[
            rec(5, None, E::CacheHit { region: "r".into() }),
            rec(5, None, E::CacheHit { region: "r".into() }),
        ]);
        let mut reader = TraceReader::new(out_of_order.as_bytes());
        assert!(reader.next().unwrap().is_ok());
        let err = reader.next().unwrap().unwrap_err();
        assert!(matches!(err, TraceReadError::NonMonotonicSeq { prev: 5, seq: 5, .. }), "{err}");

        // A corrupt line with records after it is corruption, not
        // truncation (the torn-tail tolerance only covers the final
        // line — see `truncated_final_line_counts_as_a_gap`).
        let not_json = format!("{{nope\n{}", jsonl(&sample_trace()[..1]));
        let err = TraceReader::new(not_json.as_bytes()).next().unwrap().unwrap_err();
        assert!(matches!(err, TraceReadError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn reader_counts_gaps_without_failing() {
        let gappy = jsonl(&[
            rec(0, None, E::CacheHit { region: "r".into() }),
            rec(4, None, E::CacheHit { region: "r".into() }), // 1..=3 filtered out
        ]);
        let mut reader = TraceReader::new(gappy.as_bytes());
        assert_eq!(reader.by_ref().filter(|r| r.is_ok()).count(), 2);
        assert_eq!(reader.gaps(), 3);
    }

    #[test]
    fn truncated_final_line_counts_as_a_gap() {
        // A crash-consistent trace: the writer died mid-record, leaving a
        // half-written final line. The reader ends cleanly and reports
        // the lost record through the gap counter.
        let mut text = jsonl(&[
            rec(0, None, E::CacheHit { region: "r".into() }),
            rec(1, None, E::CacheMiss { region: "r".into() }),
        ]);
        text.push_str("{\"schema\":4,\"seq\":2,\"t_s\":null,\"event\":{\"Cache");
        let mut reader = TraceReader::new(text.as_bytes());
        let results: Vec<_> = reader.by_ref().collect();
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(reader.gaps(), 1);

        // The whole-stream analyzer accepts the truncated trace too.
        let report = analyze(TraceReader::new(text.as_bytes())).unwrap();
        assert_eq!(report.records, 2);
        assert_eq!(report.seq_gaps, 1);

        // A trailing newline (or blank lines) after the torn record
        // changes nothing: blanks are not records.
        let trailing = format!("{text}\n\n");
        let mut reader = TraceReader::new(trailing.as_bytes());
        assert_eq!(reader.by_ref().filter(|r| r.is_ok()).count(), 2);
        assert_eq!(reader.gaps(), 1);
    }

    #[test]
    fn mid_stream_corruption_is_still_a_hard_error() {
        let good = jsonl(&[rec(0, None, E::CacheHit { region: "r".into() })]);
        let text = format!("{{torn\n{good}");
        let mut reader = TraceReader::new(text.as_bytes());
        let err = reader.next().unwrap().unwrap_err();
        assert!(matches!(err, TraceReadError::Parse { line: 1, .. }), "{err}");
        // The record after the corrupt line is still delivered.
        assert!(reader.next().unwrap().is_ok());
        assert!(reader.next().is_none());
    }

    #[test]
    fn fault_events_are_counted_and_rendered() {
        let records = vec![
            rec(
                0,
                Some(0.0),
                E::FaultInjected {
                    kind: "timer_spike".into(),
                    region: "rhs".into(),
                    magnitude: 8.0,
                },
            ),
            rec(
                1,
                Some(0.1),
                E::FaultInjected {
                    kind: "rapl_read".into(),
                    region: String::new(),
                    magnitude: 17.0,
                },
            ),
            rec(
                2,
                Some(0.1),
                E::FaultInjected {
                    kind: "rapl_read".into(),
                    region: String::new(),
                    magnitude: 18.0,
                },
            ),
            rec(
                3,
                Some(0.2),
                E::MeasurementRejected { region: "rhs".into(), value: 4.0, median: 0.5, mad: 0.01 },
            ),
            rec(
                4,
                Some(0.3),
                E::TunerDegraded { region: "rhs".into(), threads: 16, schedule: "guided,8".into() },
            ),
        ];
        let report = analyze(TraceReader::new(jsonl(&records).as_bytes())).unwrap();
        assert_eq!(report.faults.injected_total(), 3);
        assert_eq!(report.faults.injected["rapl_read"], 2);
        assert_eq!(report.faults.rejected, 1);
        assert_eq!(report.faults.degraded_regions, vec!["rhs".to_string()]);
        assert!(report.faults.any());
        for rendered in [report.to_table(), report.to_markdown()] {
            assert!(rendered.contains("Faults & recovery"), "{rendered}");
            assert!(rendered.contains("3 fault(s) injected"), "{rendered}");
            assert!(rendered.contains("rapl_read ×2"), "{rendered}");
            assert!(rendered.contains("1 measurement(s) rejected"), "{rendered}");
            assert!(rendered.contains("1 region(s) frozen (rhs)"), "{rendered}");
        }
        // Round-trips, and faultless reports stay silent about faults.
        let back = TraceReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back.faults, report.faults);
        let clean = analyze(TraceReader::new(jsonl(&sample_trace()).as_bytes())).unwrap();
        assert!(!clean.faults.any());
        assert!(!clean.to_table().contains("Faults & recovery"));
    }

    #[test]
    fn broker_events_are_attributed_per_tenant() {
        use arcs_trace::JobAllocation as A;
        let records = vec![
            rec(
                0,
                Some(0.0),
                E::JobSubmitted {
                    job: 1,
                    tenant: "acme".into(),
                    workload: "sp.W".into(),
                    floor_w: 40.0,
                    weight: 1.0,
                    timesteps: 0,
                    fault_seed: None,
                    requested_floor_w: None,
                },
            ),
            rec(
                1,
                Some(0.0),
                E::JobScheduled { job: 1, tenant: "acme".into(), node: 0, cap_w: 100.0 },
            ),
            rec(
                2,
                Some(0.0),
                E::CapReallocated {
                    reason: "scheduled".into(),
                    budget_w: 200.0,
                    total_w: 100.0,
                    allocations: vec![A { job: 1, node: 0, cap_w: 100.0 }],
                },
            ),
            rec(
                3,
                Some(1.0),
                E::JobSubmitted {
                    job: 2,
                    tenant: "umbrella".into(),
                    workload: "bt.W".into(),
                    floor_w: 40.0,
                    weight: 1.0,
                    timesteps: 0,
                    fault_seed: None,
                    requested_floor_w: None,
                },
            ),
            rec(
                4,
                Some(1.0),
                E::JobScheduled { job: 2, tenant: "umbrella".into(), node: 1, cap_w: 80.0 },
            ),
            rec(
                5,
                Some(1.0),
                E::CapReallocated {
                    reason: "scheduled".into(),
                    budget_w: 200.0,
                    total_w: 200.0,
                    allocations: vec![
                        A { job: 1, node: 0, cap_w: 120.0 },
                        A { job: 2, node: 1, cap_w: 80.0 },
                    ],
                },
            ),
            rec(
                6,
                Some(2.0),
                E::JobSubmitted {
                    job: 3,
                    tenant: "umbrella".into(),
                    workload: "bt.W".into(),
                    floor_w: 500.0,
                    weight: 1.0,
                    timesteps: 0,
                    fault_seed: None,
                    requested_floor_w: None,
                },
            ),
            rec(
                7,
                Some(2.0),
                E::JobRejected {
                    job: 3,
                    tenant: "umbrella".into(),
                    floor_w: 500.0,
                    reason: "floor cap exceeds the global budget".into(),
                },
            ),
            rec(
                8,
                Some(10.0),
                E::JobCompleted {
                    job: 1,
                    tenant: "acme".into(),
                    node: 0,
                    status: "ok".into(),
                    time_s: 10.0,
                    energy_j: 1000.0,
                },
            ),
            rec(
                9,
                Some(10.0),
                E::CapReallocated {
                    reason: "completed".into(),
                    budget_w: 200.0,
                    total_w: 80.0,
                    allocations: vec![A { job: 2, node: 1, cap_w: 80.0 }],
                },
            ),
            rec(
                10,
                Some(12.0),
                E::JobCompleted {
                    job: 2,
                    tenant: "umbrella".into(),
                    node: 1,
                    status: "degraded".into(),
                    time_s: 12.0,
                    energy_j: 900.0,
                },
            ),
        ];
        let report = analyze(TraceReader::new(jsonl(&records).as_bytes())).unwrap();
        let b = &report.broker;
        assert!(b.any());
        assert_eq!((b.submitted, b.scheduled, b.completed, b.rejected), (3, 2, 2, 1));
        assert_eq!(b.lost_jobs(), 0);
        assert_eq!(b.reallocations, 3);
        assert_eq!(b.budget_w, 200.0);
        assert_eq!(b.max_total_w, 200.0);
        assert_eq!(b.over_budget_events, 0);

        let acme = &b.tenants["acme"];
        assert_eq!((acme.submitted, acme.completed, acme.degraded, acme.rejected), (1, 1, 0, 0));
        assert!((acme.mean_allocated_w() - 110.0).abs() < 1e-12); // (100 + 120) / 2
        let umb = &b.tenants["umbrella"];
        assert_eq!((umb.submitted, umb.completed, umb.degraded, umb.rejected), (2, 1, 1, 1));
        assert!((umb.mean_allocated_w() - 80.0).abs() < 1e-12);
        assert!((umb.time_s - 12.0).abs() < 1e-12);
        assert!((b.fairness_ratio().unwrap() - 110.0 / 80.0).abs() < 1e-12);

        for rendered in [report.to_table(), report.to_markdown()] {
            assert!(rendered.contains("Broker"), "{rendered}");
            assert!(rendered.contains("budget conserved"), "{rendered}");
            assert!(rendered.contains("3 submitted, 2 scheduled, 2 completed"), "{rendered}");
            assert!(rendered.contains("fairness"), "{rendered}");
        }
        let back = TraceReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back.broker, report.broker);

        // Broker-free traces stay silent about the broker.
        let clean = analyze(TraceReader::new(jsonl(&sample_trace()).as_bytes())).unwrap();
        assert!(!clean.broker.any());
        assert!(!clean.to_table().contains("Broker"));
    }

    #[test]
    fn over_budget_reallocations_are_flagged() {
        let records = vec![rec(
            0,
            Some(0.0),
            E::CapReallocated {
                reason: "scheduled".into(),
                budget_w: 200.0,
                // total_w lies low; the allocations are what count.
                total_w: 100.0,
                allocations: vec![
                    arcs_trace::JobAllocation { job: 1, node: 0, cap_w: 150.0 },
                    arcs_trace::JobAllocation { job: 2, node: 1, cap_w: 100.0 },
                ],
            },
        )];
        let report = analyze(TraceReader::new(jsonl(&records).as_bytes())).unwrap();
        assert_eq!(report.broker.over_budget_events, 1);
        assert!((report.broker.max_total_w - 250.0).abs() < 1e-12);
        assert!(report.to_table().contains("1 OVER-BUDGET event(s)"));
    }

    #[test]
    fn compare_carries_the_cells_per_s_trajectory() {
        let mut base = analyze(TraceReader::new(jsonl(&sample_trace()).as_bytes())).unwrap();
        let mut cand = base.clone();
        base.cells_per_s = Some(50_000.0);
        cand.cells_per_s = Some(65_000.0);
        let cmp = compare_reports(&base, &cand, 0.0);
        assert_eq!(cmp.baseline_cells_per_s, Some(50_000.0));
        assert_eq!(cmp.candidate_cells_per_s, Some(65_000.0));
        assert!(!cmp.regressed(), "throughput is informational, never gated");
        assert!(cmp.to_table().contains("cells/s"), "{}", cmp.to_table());
        let back: Comparison = serde_json::from_str(&cmp.to_json()).unwrap();
        assert_eq!(back, cmp);

        // Artifacts from before the field existed still parse (and stay
        // silent in the table).
        let old =
            r#"{"fail_on_pct":0.0,"rows":[],"missing_in_candidate":[],"new_in_candidate":[]}"#;
        let parsed: Comparison = serde_json::from_str(old).unwrap();
        assert_eq!(parsed.baseline_cells_per_s, None);
        assert_eq!(parsed.candidate_cells_per_s, None);
        assert!(!compare_reports(&base, &base, 0.0).to_table().is_empty());
        let silent = compare_reports(
            &TraceReport { cells_per_s: None, ..base.clone() },
            &TraceReport { cells_per_s: None, ..base },
            0.0,
        );
        assert!(!silent.to_table().contains("cells/s"));
    }

    #[test]
    fn analyzers_reconstruct_the_run() {
        let report = analyze(TraceReader::new(jsonl(&sample_trace()).as_bytes())).unwrap();
        assert_eq!(report.schema, SCHEMA_VERSION);
        assert_eq!(report.seq_gaps, 0);

        let rhs = &report.regions["rhs"];
        assert_eq!(rhs.invocations, 3);
        assert!((rhs.wall_s - 1.5).abs() < 1e-12);
        assert!((rhs.busy_s - 10.8).abs() < 1e-12);
        assert!((rhs.barrier_s - 1.2).abs() < 1e-12);
        assert!((rhs.implicit_task_s() - 12.0).abs() < 1e-12);
        assert_eq!(rhs.config_switches, 3);
        assert!((rhs.mean_call_s() - 0.5).abs() < 1e-12);
        assert_eq!(report.regions["zsolve"].invocations, 3);

        // Cap summary: everything ran under the single 80 W segment.
        assert_eq!(report.caps.len(), 1);
        let cap = &report.caps[0];
        assert_eq!(cap.invocations, 6);
        assert!((cap.region_s - 2.25).abs() < 1e-12);
        assert!((cap.energy_j - (3.0 * 40.0 + 3.0 * 18.0)).abs() < 1e-9);
        assert!((cap.edp() - cap.energy_j * cap.region_s).abs() < 1e-9);

        // Convergence: best-so-far decreases, final point converged.
        let curve = &report.convergence["rhs"];
        assert_eq!(curve.len(), 3);
        assert!(curve.windows(2).all(|w| w[1].best_value <= w[0].best_value));
        assert!(curve.last().unwrap().converged);

        // Cache: 1 miss then 2 hits.
        assert_eq!((report.cache.hits, report.cache.misses), (2, 1));
        assert!((report.cache.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(report.cache.timeline.len(), 3);

        // Overhead cross-check: the driver clock advanced by region time
        // plus charged overhead and nothing else.
        assert!((report.overhead.total_s() - 3.0 * 0.009).abs() < 1e-12);
        assert!(report.overhead_consistent(), "residual {}", report.overhead_residual_s());

        // Energy ledger: the package meter agrees with Σ region energy +
        // Σ overhead energy, and the run's objective was picked up from
        // the search events.
        assert_eq!(report.objective, Objective::Time);
        assert!((report.overhead.energy_j - 0.3).abs() < 1e-12);
        assert!((report.final_energy_total_j.unwrap() - 174.3).abs() < 1e-9);
        assert!(report.energy_consistent(), "residual {:?}", report.energy_residual_j());

        // All three render formats mention the load-bearing facts.
        for text in [report.to_table(), report.to_markdown()] {
            assert!(text.contains("rhs"));
            assert!(text.contains("consistent"));
            assert!(text.contains("80 W"));
        }
        let back = TraceReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);

        // Policy attribution: rhs announced `static` on every begin, so
        // its ends land on the static row; zsolve never emitted a begin
        // and stays unattributed.
        assert_eq!(report.policy_timeline["rhs"].len(), 1);
        assert_eq!(report.policy_timeline["rhs"][0].policy, "static");
        assert_eq!(report.policy_timeline["rhs"][0].invocations, 3);
        let st = &report.policies["static"];
        assert_eq!(st.invocations, 3);
        assert!((st.wall_s - 1.5).abs() < 1e-12);
        assert_eq!(report.policy_switches, 0);
    }

    #[test]
    fn policy_switches_build_the_timeline() {
        let mut records = Vec::new();
        let mut seq = 0;
        let policies = ["static", "static", "factoring", "factoring", "awf"];
        for (i, policy) in policies.iter().enumerate() {
            if i > 0 && policies[i - 1] != *policy {
                records.push(rec(
                    seq,
                    Some(i as f64),
                    E::PolicySwitched {
                        region: "mc/track".into(),
                        from: policies[i - 1].into(),
                        to: policy.to_string(),
                        invocation: i as u64,
                        imbalance: 0.4,
                    },
                ));
                seq += 1;
            }
            records.push(rec(
                seq,
                Some(i as f64),
                E::RegionBegin {
                    region: "mc/track".into(),
                    threads: 8,
                    schedule: format!("{policy},16"),
                    // Half the begins rely on the pre-v8 fallback path.
                    chunk_policy: if i % 2 == 0 { policy.to_string() } else { String::new() },
                },
            ));
            seq += 1;
            records.push(rec(
                seq,
                Some(i as f64 + 0.5),
                E::RegionEnd {
                    region: "mc/track".into(),
                    time_s: 0.5,
                    energy_j: 10.0,
                    busy_s: 3.0,
                    barrier_s: 1.0,
                    objective_value: None,
                },
            ));
            seq += 1;
        }
        let report = analyze(TraceReader::new(jsonl(&records).as_bytes())).unwrap();
        let timeline = &report.policy_timeline["mc/track"];
        assert_eq!(timeline.len(), 3);
        assert_eq!(
            timeline
                .iter()
                .map(|s| (s.policy.as_str(), s.from_invocation, s.invocations))
                .collect::<Vec<_>>(),
            vec![("static", 1, 2), ("factoring", 3, 2), ("awf", 5, 1)]
        );
        assert_eq!(report.policy_switches, 2);
        assert_eq!(report.policies["factoring"].invocations, 2);
        assert_eq!(report.policies["factoring"].switches_in, 1);
        assert_eq!(report.policies["awf"].switches_in, 1);
        assert!((report.policies["static"].wall_s - 1.0).abs() < 1e-12);
        // The rendered report narrates the switches and the timeline.
        let text = report.to_table();
        assert!(text.contains("Scheduling policies"), "{text}");
        assert!(text.contains("2 intra-run policy switch(es)"), "{text}");
        assert!(text.contains("static@1..+2 → factoring@3..+2 → awf@5..+1"), "{text}");
    }

    #[test]
    fn inconsistent_overhead_is_flagged() {
        // A RegionEnd whose timeline position includes 1 s the trace
        // never accounts for.
        let records = vec![rec(
            0,
            Some(1.5),
            E::RegionEnd {
                region: "r".into(),
                time_s: 0.5,
                energy_j: 1.0,
                busy_s: 0.5,
                barrier_s: 0.0,
                objective_value: None,
            },
        )];
        let report = analyze(TraceReader::new(jsonl(&records).as_bytes())).unwrap();
        assert!(!report.overhead_consistent());
        assert!((report.overhead_residual_s() - 1.0).abs() < 1e-12);
        assert!(report.to_table().contains("INCONSISTENT"));
    }

    #[test]
    fn cache_timeline_stays_bounded() {
        let mut analysis = TraceAnalysis::new();
        for i in 0..100_000u64 {
            let event = if i % 4 == 0 {
                E::CacheMiss { region: "r".into() }
            } else {
                E::CacheHit { region: "r".into() }
            };
            analysis.consume(&rec(i, None, event));
        }
        let report = analysis.finish(0);
        assert!(report.cache.timeline.len() <= CACHE_TIMELINE_POINTS);
        assert!(report.cache.timeline.len() >= CACHE_TIMELINE_POINTS / 2);
        let last = report.cache.timeline.last().unwrap();
        assert!((last.hit_rate - 0.75).abs() < 1e-3);
        // Points are in lookup order and cover the tail of the stream.
        assert!(report.cache.timeline.windows(2).all(|w| w[0].lookups < w[1].lookups));
        assert!(last.lookups > 50_000);
    }

    #[test]
    fn compare_passes_identical_runs_at_zero_threshold() {
        let report = analyze(TraceReader::new(jsonl(&sample_trace()).as_bytes())).unwrap();
        let cmp = compare_reports(&report, &report, 0.0);
        assert!(!cmp.regressed(), "{}", cmp.to_table());
        assert_eq!(cmp.rows[0].name, "TOTAL");
        assert_eq!(cmp.rows.len(), 1 + report.regions.len());
        assert!(cmp.to_table().contains("pass"));
    }

    #[test]
    fn throughput_gate_fires_only_when_enabled() {
        let mut cmp = Comparison {
            baseline_cells_per_s: Some(1000.0),
            candidate_cells_per_s: Some(600.0),
            ..Default::default()
        };
        // -40% but no gate installed: informational only.
        assert!(!cmp.regressed());
        assert!(!cmp.throughput_regressed());
        cmp = cmp.with_throughput_gate(30.0);
        assert!(cmp.throughput_regressed());
        assert!(cmp.regressed());
        assert!(cmp.to_table().contains("gated at -30%"), "{}", cmp.to_table());
        assert!(cmp.to_table().contains("REGRESSION"));
        // Within the margin: the gate stays quiet.
        cmp.candidate_cells_per_s = Some(750.0);
        assert!(!cmp.regressed());
        // A baseline without the field can never fail the gate.
        cmp.candidate_cells_per_s = Some(600.0);
        cmp.baseline_cells_per_s = None;
        assert!(!cmp.regressed());
        // The gate survives the JSON round trip (ci.sh re-reads artifacts).
        cmp.baseline_cells_per_s = Some(1000.0);
        let back = Comparison::from_json(&cmp.to_json()).unwrap();
        assert!(back.regressed());
    }

    #[test]
    fn compare_flags_slowdowns_past_threshold() {
        let base = analyze(TraceReader::new(jsonl(&sample_trace()).as_bytes())).unwrap();
        let mut cand = base.clone();
        cand.regions.get_mut("rhs").unwrap().wall_s *= 1.10; // +10 % mean
        let lenient = compare_reports(&base, &cand, 15.0);
        assert!(!lenient.regressed());
        let strict = compare_reports(&base, &cand, 5.0);
        assert!(strict.regressed());
        let row = strict.rows.iter().find(|r| r.name == "rhs").unwrap();
        assert!(row.regression && (row.delta_pct - 10.0).abs() < 1e-9);
        assert!(strict.to_table().contains("REGRESSION"));

        // Exactly-at-threshold is NOT a regression (strict inequality).
        let at = compare_reports(&base, &cand, 10.0 + 1e-9);
        assert!(!at.regressed());
    }

    #[test]
    fn energy_objective_gates_what_the_time_gate_misses() {
        let base = analyze(TraceReader::new(jsonl(&sample_trace()).as_bytes())).unwrap();
        let mut cand = base.clone();
        // Same speed, 20 % more energy in one region (and in the total).
        cand.regions.get_mut("rhs").unwrap().energy_j *= 1.20;
        cand.total_energy_j += 0.20 * base.regions["rhs"].energy_j;

        let time_gate = compare_reports_for(&base, &cand, 5.0, Objective::Time);
        assert!(!time_gate.regressed(), "{}", time_gate.to_table());

        let energy_gate = compare_reports_for(&base, &cand, 5.0, Objective::Energy);
        assert!(energy_gate.regressed());
        assert_eq!(energy_gate.objective, Objective::Energy);
        let row = energy_gate.rows.iter().find(|r| r.name == "rhs").unwrap();
        assert!(row.regression && (row.delta_pct - 20.0).abs() < 1e-9);
        assert!(energy_gate.to_table().contains("baseline J"));

        // EDP inherits the energy regression (time unchanged).
        let edp_gate = compare_reports_for(&base, &cand, 5.0, Objective::EnergyDelay);
        assert!(edp_gate.regressed());
        let back: Comparison = serde_json::from_str(&energy_gate.to_json()).unwrap();
        assert_eq!(back, energy_gate);
    }

    #[test]
    fn compare_reports_region_set_changes_without_failing() {
        let base = analyze(TraceReader::new(jsonl(&sample_trace()).as_bytes())).unwrap();
        let mut cand = base.clone();
        let moved = cand.regions.remove("zsolve").unwrap();
        cand.regions.insert("zsolve_v2".into(), moved);
        let cmp = compare_reports(&base, &cand, 0.0);
        assert_eq!(cmp.missing_in_candidate, ["zsolve"]);
        assert_eq!(cmp.new_in_candidate, ["zsolve_v2"]);
        assert!(!cmp.regressed());
        let back: Comparison = serde_json::from_str(&cmp.to_json()).unwrap();
        assert_eq!(back, cmp);
    }
}
